// Package wal implements a JBD-style physical write-ahead journal over a
// block device region, with ext3/JBD2-style group commit.
//
// Both filesystems in this reproduction use it: the traditional file-based
// filesystem (internal/plainfs) journals raw block images, and DBFS journals
// the (already encrypted) images of personal-data blocks. The journal is the
// centrepiece of the paper's §1 motivating claim: a filesystem's logging
// mechanism can violate the right to be forgotten, because data deleted at a
// higher layer survives as block images inside the journal region. The
// journal-leak experiment (DESIGN.md F2V1) scans this region for residues.
//
// On-disk format, one commit group of k transactions:
//
//	[descriptor 1] [data]... [descriptor 2] [data]... ... [commit block]
//
// Each descriptor lists the home locations of the data blocks that follow
// it; the single commit block seals the whole group with the transaction
// count, the id of the last transaction, and a checksum over every
// descriptor and data block. A group written by an older single-transaction
// journal is simply the k=1 case (its commit block carries a zero count,
// which recovery reads as one). Recovery scans the journal region, replays
// every transaction inside a group with a valid commit block in ascending
// transaction-id order, and discards torn groups — the standard redo-logging
// protocol, extended to multi-transaction commit records.
//
// Commit path: transactions are sealed by their callers, enqueued, and
// coalesced by a committer goroutine that drains the queue in batches, logs
// each batch with one commit marker and one flush barrier, checkpoints the
// images home, and wakes every waiter. Concurrent committers therefore
// share fsync cost instead of paying it per transaction. Until a
// transaction's images are checkpointed they are visible through
// ReadThrough, so callers that seal under a lock and wait outside it still
// read their predecessors' writes.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/blockdev"
)

const (
	// magic identifies journal metadata blocks.
	magic uint32 = 0x72677044 // "rgpD"

	blockTypeDescriptor uint32 = 1
	blockTypeCommit     uint32 = 2

	headerSize = 4 + 4 + 8 + 4 // magic, type, txid, ntags/ntxns

	// MaxBlocksPerTxn is the most home blocks a single transaction can
	// carry: every tag is an 8-byte home block number and all tags must fit
	// in one descriptor block.
	MaxBlocksPerTxn = (blockdev.BlockSize - headerSize) / 8

	// DefaultGroupBatch is the default bound on transactions per commit
	// group. 1 disables batching (every transaction is its own group).
	DefaultGroupBatch = 32
)

// Sentinel errors.
var (
	// ErrTxnTooLarge reports a transaction exceeding MaxBlocksPerTxn.
	ErrTxnTooLarge = errors.New("wal: transaction exceeds max blocks")
	// ErrTxnDone reports reuse of a committed or aborted transaction.
	ErrTxnDone = errors.New("wal: transaction already finished")
	// ErrJournalFull reports a transaction larger than the journal region.
	ErrJournalFull = errors.New("wal: transaction larger than journal region")
	// ErrBadRegion reports an invalid journal region.
	ErrBadRegion = errors.New("wal: invalid journal region")
	// ErrJournalAborted reports a commit attempted after a group flush
	// failed. Once a flush fails the log refuses all further commits (the
	// ext4 journal-abort discipline): later transactions may have staged
	// against the failed group's never-durable images through the
	// in-flight overlay, so persisting them could write metadata that
	// references data the disk never received. Remount (Open + Recover)
	// to continue on the surviving on-disk state.
	ErrJournalAborted = errors.New("wal: journal aborted after flush failure")
)

// Stats counts journal activity.
type Stats struct {
	TxnsCommitted uint64
	BlocksLogged  uint64
	TxnsReplayed  uint64
	// GroupCommits counts commit groups flushed; TxnsCommitted /
	// GroupCommits is the achieved batching factor.
	GroupCommits uint64
	// MaxGroupTxns is the largest group flushed so far.
	MaxGroupTxns uint64
}

// pendingTxn is one sealed transaction waiting in the commit queue.
type pendingTxn struct {
	txid uint64
	home []uint64
	data [][]byte
	done chan error
}

// inflightBlock is the newest enqueued-but-not-yet-checkpointed image of a
// home block, plus how many queued transactions wrote it.
type inflightBlock struct {
	data []byte
	refs int
}

// Log is a write-ahead journal occupying the device blocks
// [start, start+length). It is safe for concurrent use; concurrent
// transactions are coalesced into commit groups.
type Log struct {
	dev    blockdev.Device
	start  uint64
	length uint64

	mu         sync.Mutex
	window     time.Duration
	maxBatch   int
	idle       sync.Cond // signaled when no transaction is queued or in flight
	head       uint64    // next journal-region block index to write (relative)
	seq        uint64    // next transaction id
	stats      Stats
	queue      []*pendingTxn
	committing bool
	pending    int   // enqueued transactions not yet signaled
	aborted    error // first flush failure; non-nil = journal abort
	inflight   map[uint64]*inflightBlock
}

// Open attaches a journal to the region [start, start+length) of dev. The
// region must hold at least three blocks (descriptor + one data + commit).
// Open does not replay; call Recover first when mounting an existing device.
func Open(dev blockdev.Device, start, length uint64) (*Log, error) {
	if length < 3 {
		return nil, fmt.Errorf("%w: need >= 3 blocks, got %d", ErrBadRegion, length)
	}
	if start+length > dev.NumBlocks() {
		return nil, fmt.Errorf("%w: region [%d,%d) beyond device end %d",
			ErrBadRegion, start, start+length, dev.NumBlocks())
	}
	l := &Log{
		dev:      dev,
		start:    start,
		length:   length,
		seq:      1,
		maxBatch: DefaultGroupBatch,
		inflight: make(map[uint64]*inflightBlock),
	}
	l.idle.L = &l.mu
	return l, nil
}

// Configure sets the group-commit parameters: window is how long a freshly
// woken committer waits for more transactions to arrive before draining the
// queue (0 = drain immediately, batching only what queued during the
// previous flush); maxBatch bounds transactions per group (<= 0 restores
// DefaultGroupBatch, 1 disables batching). Safe to call at any time, even
// with transactions in flight: the committer re-reads both parameters
// under the lock, so a running group finishes with the values it started
// with and the next group picks up the new ones.
func (l *Log) Configure(window time.Duration, maxBatch int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if maxBatch <= 0 {
		maxBatch = DefaultGroupBatch
	}
	l.window = window
	l.maxBatch = maxBatch
}

// Config reports the current group-commit parameters.
func (l *Log) Config() (window time.Duration, maxBatch int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.window, l.maxBatch
}

// Stats returns a snapshot of the journal counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Region reports the journal's block range [start, start+length) so
// experiments can attribute residue hits to the journal area.
func (l *Log) Region() (start, length uint64) {
	return l.start, l.length
}

// ReadThrough reads block n, preferring the image of the newest enqueued
// transaction that wrote it over the device contents. Callers that stage
// transactions under an external lock but wait for durability outside it
// must read through this overlay, or they would miss the writes of
// predecessors whose groups have not checkpointed yet.
func (l *Log) ReadThrough(n uint64, buf []byte) error {
	l.mu.Lock()
	if e, ok := l.inflight[n]; ok {
		copy(buf, e.data)
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()
	return l.dev.ReadBlock(n, buf)
}

// Barrier blocks until every enqueued transaction has been flushed and
// checkpointed (or failed). Callers that bypass the journal on purpose —
// the secure-free zero pass writes home locations directly — barrier first
// so no queued checkpoint can resurrect the bytes they scrub.
func (l *Log) Barrier() {
	l.mu.Lock()
	for l.pending > 0 {
		l.idle.Wait()
	}
	l.mu.Unlock()
}

// Txn is a pending transaction: a buffered set of whole-block writes that
// become durable atomically at Commit.
type Txn struct {
	log  *Log
	home []uint64
	data [][]byte
	done bool
}

// Begin starts a transaction.
func (l *Log) Begin() *Txn {
	return &Txn{log: l}
}

// Write buffers a whole-block write to home block n. The data is copied, so
// the caller may reuse the buffer. Writing the same block twice in one
// transaction replaces the earlier image.
func (t *Txn) Write(n uint64, data []byte) error {
	if t.done {
		return ErrTxnDone
	}
	if len(data) != blockdev.BlockSize {
		return blockdev.ErrBadSize
	}
	for i, h := range t.home {
		if h == n {
			copy(t.data[i], data)
			return nil
		}
	}
	if len(t.home) >= MaxBlocksPerTxn {
		return fmt.Errorf("%w: %d blocks", ErrTxnTooLarge, len(t.home)+1)
	}
	cp := make([]byte, blockdev.BlockSize)
	copy(cp, data)
	t.home = append(t.home, n)
	t.data = append(t.data, cp)
	return nil
}

// Read returns the buffered image of block n if this transaction wrote it,
// giving read-your-writes semantics within a transaction.
func (t *Txn) Read(n uint64) ([]byte, bool) {
	for i, h := range t.home {
		if h == n {
			out := make([]byte, blockdev.BlockSize)
			copy(out, t.data[i])
			return out, true
		}
	}
	return nil, false
}

// Len reports the number of distinct blocks buffered.
func (t *Txn) Len() int { return len(t.home) }

// Abort discards the transaction.
func (t *Txn) Abort() {
	t.done = true
	t.home, t.data = nil, nil
}

// Ticket is a claim on an enqueued transaction's durability.
type Ticket struct {
	p *pendingTxn
}

// Wait blocks until the ticket's transaction has been flushed as part of a
// commit group and checkpointed home, returning the group's outcome.
func (tk *Ticket) Wait() error {
	return <-tk.p.done
}

// Enqueue seals the transaction and hands it to the committer. It returns a
// Ticket to wait on (nil for an empty transaction, which needs no IO). The
// transaction's images become visible through ReadThrough immediately, so a
// caller staging under a lock may enqueue, release the lock, and Wait — the
// next transaction staged under that lock reads its predecessor's writes.
func (t *Txn) Enqueue() (*Ticket, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	t.done = true
	if len(t.home) == 0 {
		return nil, nil
	}
	l := t.log
	needed := uint64(len(t.home) + 2) // descriptor + data + commit
	if needed > l.length {
		return nil, fmt.Errorf("%w: txn needs %d blocks, journal has %d", ErrJournalFull, needed, l.length)
	}
	p := &pendingTxn{home: t.home, data: t.data, done: make(chan error, 1)}

	l.mu.Lock()
	if l.aborted != nil {
		cause := l.aborted
		l.mu.Unlock()
		return nil, fmt.Errorf("%w (cause: %v)", ErrJournalAborted, cause)
	}
	p.txid = l.seq
	l.seq++
	l.queue = append(l.queue, p)
	l.pending++
	for i, h := range p.home {
		if e, ok := l.inflight[h]; ok {
			e.data = p.data[i]
			e.refs++
		} else {
			l.inflight[h] = &inflightBlock{data: p.data[i], refs: 1}
		}
	}
	if !l.committing {
		l.committing = true
		go l.committer()
	}
	l.mu.Unlock()
	return &Ticket{p: p}, nil
}

// Commit makes the transaction durable: it enqueues the transaction and
// waits for its commit group to be logged, flushed, and checkpointed. An
// empty transaction commits as a no-op.
func (t *Txn) Commit() error {
	tk, err := t.Enqueue()
	if err != nil || tk == nil {
		return err
	}
	return tk.Wait()
}

// takeBatchLocked pops the next commit group off the queue: up to maxBatch
// transactions whose descriptors, data and shared commit block fit the
// journal region together. It returns the group and its block count.
func (l *Log) takeBatchLocked() ([]*pendingTxn, uint64) {
	needed := uint64(1) // shared commit block
	var batch []*pendingTxn
	for len(l.queue) > 0 && len(batch) < l.maxBatch {
		p := l.queue[0]
		pn := uint64(len(p.home)) + 1 // descriptor + data
		if len(batch) > 0 && needed+pn > l.length {
			break
		}
		batch = append(batch, p)
		needed += pn
		l.queue[0] = nil // drop the backing-array reference to the images
		l.queue = l.queue[1:]
	}
	return batch, needed
}

// committer drains the commit queue in groups until it is empty, then
// exits; the next Enqueue starts a fresh one. Only one committer runs at a
// time, so groups are logged and checkpointed strictly in queue order.
func (l *Log) committer() {
	l.mu.Lock()
	window := l.window
	l.mu.Unlock()
	if window > 0 {
		time.Sleep(window)
	}
	for {
		l.mu.Lock()
		batch, needed := l.takeBatchLocked()
		if len(batch) == 0 {
			l.committing = false
			l.mu.Unlock()
			return
		}
		var err error
		if aborted := l.aborted; aborted != nil {
			// Journal abort: later groups may depend (via the overlay) on
			// the failed group's images — fail them instead of flushing.
			l.mu.Unlock()
			err = fmt.Errorf("%w (cause: %v)", ErrJournalAborted, aborted)
		} else {
			// Groups never wrap: if the tail cannot hold this group, start
			// again from the beginning of the region. The previous group is
			// already checkpointed (the committer is sequential), so
			// overwriting old journal blocks is harmless; recovery rescans
			// the whole region.
			if l.head+needed > l.length {
				l.head = 0
			}
			groupStart := l.start + l.head
			l.head += needed
			l.mu.Unlock()

			// Device IO happens outside l.mu so new transactions keep
			// enqueueing (and reading through the overlay) during the
			// flush — that overlap is where the batching comes from.
			err = l.flushGroup(groupStart, batch)
		}

		l.mu.Lock()
		if err != nil && l.aborted == nil {
			l.aborted = err
		}
		if err == nil {
			l.stats.GroupCommits++
			if uint64(len(batch)) > l.stats.MaxGroupTxns {
				l.stats.MaxGroupTxns = uint64(len(batch))
			}
			for _, p := range batch {
				l.stats.TxnsCommitted++
				l.stats.BlocksLogged += uint64(len(p.home))
			}
		}
		for _, p := range batch {
			for _, h := range p.home {
				if e, ok := l.inflight[h]; ok {
					e.refs--
					if e.refs == 0 {
						delete(l.inflight, h)
					}
				}
			}
		}
		l.pending -= len(batch)
		if l.pending == 0 {
			l.idle.Broadcast()
		}
		l.mu.Unlock()
		for _, p := range batch {
			p.done <- err
		}
	}
}

// flushGroup logs one commit group at groupStart (absolute device block):
// per-transaction descriptors and data images, one shared commit block, one
// flush barrier; then checkpoints every image home and flushes again. Both
// write passes are submitted as vectors so devices (and the IO-driver bus)
// charge them as batches.
func (l *Log) flushGroup(groupStart uint64, batch []*pendingTxn) error {
	var (
		nblocks = 1
		sum     = fnv.New64a()
	)
	for _, p := range batch {
		nblocks += len(p.home) + 1
	}
	ns := make([]uint64, 0, nblocks)
	imgs := make([][]byte, 0, nblocks)
	blk := groupStart
	for _, p := range batch {
		desc := make([]byte, blockdev.BlockSize)
		binary.LittleEndian.PutUint32(desc[0:], magic)
		binary.LittleEndian.PutUint32(desc[4:], blockTypeDescriptor)
		binary.LittleEndian.PutUint64(desc[8:], p.txid)
		binary.LittleEndian.PutUint32(desc[16:], uint32(len(p.home)))
		for i, h := range p.home {
			binary.LittleEndian.PutUint64(desc[headerSize+8*i:], h)
		}
		_, _ = sum.Write(desc)
		ns = append(ns, blk)
		imgs = append(imgs, desc)
		blk++
		for _, img := range p.data {
			_, _ = sum.Write(img)
			ns = append(ns, blk)
			imgs = append(imgs, img)
			blk++
		}
	}
	com := make([]byte, blockdev.BlockSize)
	binary.LittleEndian.PutUint32(com[0:], magic)
	binary.LittleEndian.PutUint32(com[4:], blockTypeCommit)
	binary.LittleEndian.PutUint64(com[8:], batch[len(batch)-1].txid)
	binary.LittleEndian.PutUint64(com[16:], sum.Sum64())
	binary.LittleEndian.PutUint32(com[24:], uint32(len(batch)))
	ns = append(ns, blk)
	imgs = append(imgs, com)

	if err := blockdev.WriteBlocks(l.dev, ns, imgs); err != nil {
		return fmt.Errorf("wal: write commit group: %w", err)
	}
	if err := l.dev.Sync(); err != nil {
		return fmt.Errorf("wal: sync journal: %w", err)
	}

	// Checkpoint: apply images to home locations in transaction order, so
	// a block written by two transactions in the group ends at the later
	// image — the same winner replay would pick.
	hns := ns[:0]
	himgs := imgs[:0]
	for _, p := range batch {
		for i, h := range p.home {
			hns = append(hns, h)
			himgs = append(himgs, p.data[i])
		}
	}
	if err := blockdev.WriteBlocks(l.dev, hns, himgs); err != nil {
		return fmt.Errorf("wal: checkpoint group: %w", err)
	}
	if err := l.dev.Sync(); err != nil {
		return fmt.Errorf("wal: sync checkpoint: %w", err)
	}
	return nil
}

// replayTxn is one committed transaction found during recovery.
type replayTxn struct {
	txid uint64
	home []uint64
	data [][]byte
}

// scanGroup parses one commit group starting at the descriptor at relative
// block i. It returns the group's transactions and its end offset, or
// ok=false if the group is torn (no valid commit block sealing exactly the
// parsed segments).
func (l *Log) scanGroup(i uint64) (segs []replayTxn, end uint64, ok bool) {
	sum := fnv.New64a()
	buf := make([]byte, blockdev.BlockSize)
	j := i
	for {
		if j >= l.length {
			return nil, 0, false
		}
		if err := l.dev.ReadBlock(l.start+j, buf); err != nil {
			return nil, 0, false
		}
		if binary.LittleEndian.Uint32(buf[0:]) == magic &&
			binary.LittleEndian.Uint32(buf[4:]) == blockTypeCommit {
			// End of group: the commit block must seal exactly the
			// segments parsed, carry the last segment's txid, and match
			// the running checksum. A zero transaction count is the
			// legacy single-transaction format.
			if len(segs) == 0 {
				return nil, 0, false
			}
			ntxns := binary.LittleEndian.Uint32(buf[24:])
			if ntxns == 0 {
				ntxns = 1
			}
			if int(ntxns) != len(segs) ||
				binary.LittleEndian.Uint64(buf[8:]) != segs[len(segs)-1].txid ||
				binary.LittleEndian.Uint64(buf[16:]) != sum.Sum64() {
				return nil, 0, false
			}
			return segs, j + 1, true
		}
		if binary.LittleEndian.Uint32(buf[0:]) != magic ||
			binary.LittleEndian.Uint32(buf[4:]) != blockTypeDescriptor {
			return nil, 0, false
		}
		txid := binary.LittleEndian.Uint64(buf[8:])
		ntags := binary.LittleEndian.Uint32(buf[16:])
		if ntags == 0 || ntags > uint32(MaxBlocksPerTxn) || j+uint64(ntags)+2 > l.length {
			return nil, 0, false
		}
		_, _ = sum.Write(buf)
		home := make([]uint64, ntags)
		for k := uint32(0); k < ntags; k++ {
			home[k] = binary.LittleEndian.Uint64(buf[headerSize+8*k:])
		}
		data := make([][]byte, 0, ntags)
		for k := uint32(0); k < ntags; k++ {
			img := make([]byte, blockdev.BlockSize)
			if err := l.dev.ReadBlock(l.start+j+1+uint64(k), img); err != nil {
				return nil, 0, false
			}
			_, _ = sum.Write(img)
			data = append(data, img)
		}
		segs = append(segs, replayTxn{txid: txid, home: home, data: data})
		j += uint64(ntags) + 1
	}
}

// Recover scans the journal region, validates commit groups, and replays
// every transaction of every sealed group in ascending transaction-id
// order. It returns the number of transactions replayed. Torn groups
// (missing or corrupt commit blocks, including a group cut mid-write) are
// discarded whole, which is the crash-consistency contract.
func (l *Log) Recover() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()

	var txns []replayTxn
	buf := make([]byte, blockdev.BlockSize)
	var maxTxid uint64

	for i := uint64(0); i < l.length; {
		if err := l.dev.ReadBlock(l.start+i, buf); err != nil {
			// Unreadable journal block: resync by skipping it.
			i++
			continue
		}
		if binary.LittleEndian.Uint32(buf[0:]) != magic ||
			binary.LittleEndian.Uint32(buf[4:]) != blockTypeDescriptor {
			i++
			continue
		}
		segs, end, ok := l.scanGroup(i)
		if !ok {
			// Torn group: skip just the first descriptor so a later
			// group at an odd offset can still be found.
			i++
			continue
		}
		for _, tx := range segs {
			txns = append(txns, tx)
			if tx.txid > maxTxid {
				maxTxid = tx.txid
			}
		}
		i = end
	}

	// Replay in ascending txid order so later images win.
	for a := 0; a < len(txns); a++ {
		for b := a + 1; b < len(txns); b++ {
			if txns[b].txid < txns[a].txid {
				txns[a], txns[b] = txns[b], txns[a]
			}
		}
	}
	for _, tx := range txns {
		for i, h := range tx.home {
			if err := l.dev.WriteBlock(h, tx.data[i]); err != nil {
				return 0, fmt.Errorf("wal: replay block %d: %w", h, err)
			}
		}
	}
	if len(txns) > 0 {
		if err := l.dev.Sync(); err != nil {
			return 0, fmt.Errorf("wal: sync replay: %w", err)
		}
	}
	if maxTxid >= l.seq {
		l.seq = maxTxid + 1
	}
	l.stats.TxnsReplayed += uint64(len(txns))
	return len(txns), nil
}
