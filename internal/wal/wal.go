// Package wal implements a JBD-style physical write-ahead journal over a
// block device region.
//
// Both filesystems in this reproduction use it: the traditional file-based
// filesystem (internal/plainfs) journals raw block images, and DBFS journals
// the (already encrypted) images of personal-data blocks. The journal is the
// centrepiece of the paper's §1 motivating claim: a filesystem's logging
// mechanism can violate the right to be forgotten, because data deleted at a
// higher layer survives as block images inside the journal region. The
// journal-leak experiment (DESIGN.md F2V1) scans this region for residues.
//
// On-disk format, one transaction:
//
//	[descriptor block] [data block]... [commit block]
//
// The descriptor lists the home locations of the data blocks that follow;
// the commit block seals the transaction with a checksum. Recovery scans the
// journal region, replays every transaction that has a valid commit block in
// ascending transaction-id order, and ignores torn tails — the standard
// redo-logging protocol.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/blockdev"
)

const (
	// magic identifies journal metadata blocks.
	magic uint32 = 0x72677044 // "rgpD"

	blockTypeDescriptor uint32 = 1
	blockTypeCommit     uint32 = 2

	headerSize = 4 + 4 + 8 + 4 // magic, type, txid, ntags/reserved

	// MaxBlocksPerTxn is the most home blocks a single transaction can
	// carry: every tag is an 8-byte home block number and all tags must fit
	// in one descriptor block.
	MaxBlocksPerTxn = (blockdev.BlockSize - headerSize) / 8
)

// Sentinel errors.
var (
	// ErrTxnTooLarge reports a transaction exceeding MaxBlocksPerTxn.
	ErrTxnTooLarge = errors.New("wal: transaction exceeds max blocks")
	// ErrTxnDone reports reuse of a committed or aborted transaction.
	ErrTxnDone = errors.New("wal: transaction already finished")
	// ErrJournalFull reports a transaction larger than the journal region.
	ErrJournalFull = errors.New("wal: transaction larger than journal region")
	// ErrBadRegion reports an invalid journal region.
	ErrBadRegion = errors.New("wal: invalid journal region")
)

// Stats counts journal activity.
type Stats struct {
	TxnsCommitted uint64
	BlocksLogged  uint64
	TxnsReplayed  uint64
}

// Log is a write-ahead journal occupying the device blocks
// [start, start+length). It is safe for concurrent use; transactions are
// serialized at commit time.
type Log struct {
	dev    blockdev.Device
	start  uint64
	length uint64

	mu    sync.Mutex
	head  uint64 // next journal-region block index to write (relative)
	seq   uint64 // next transaction id
	stats Stats
}

// Open attaches a journal to the region [start, start+length) of dev. The
// region must hold at least three blocks (descriptor + one data + commit).
// Open does not replay; call Recover first when mounting an existing device.
func Open(dev blockdev.Device, start, length uint64) (*Log, error) {
	if length < 3 {
		return nil, fmt.Errorf("%w: need >= 3 blocks, got %d", ErrBadRegion, length)
	}
	if start+length > dev.NumBlocks() {
		return nil, fmt.Errorf("%w: region [%d,%d) beyond device end %d",
			ErrBadRegion, start, start+length, dev.NumBlocks())
	}
	return &Log{dev: dev, start: start, length: length, seq: 1}, nil
}

// Stats returns a snapshot of the journal counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Region reports the journal's block range [start, start+length) so
// experiments can attribute residue hits to the journal area.
func (l *Log) Region() (start, length uint64) {
	return l.start, l.length
}

// Txn is a pending transaction: a buffered set of whole-block writes that
// become durable atomically at Commit.
type Txn struct {
	log  *Log
	home []uint64
	data [][]byte
	done bool
}

// Begin starts a transaction.
func (l *Log) Begin() *Txn {
	return &Txn{log: l}
}

// Write buffers a whole-block write to home block n. The data is copied, so
// the caller may reuse the buffer. Writing the same block twice in one
// transaction replaces the earlier image.
func (t *Txn) Write(n uint64, data []byte) error {
	if t.done {
		return ErrTxnDone
	}
	if len(data) != blockdev.BlockSize {
		return blockdev.ErrBadSize
	}
	for i, h := range t.home {
		if h == n {
			copy(t.data[i], data)
			return nil
		}
	}
	if len(t.home) >= MaxBlocksPerTxn {
		return fmt.Errorf("%w: %d blocks", ErrTxnTooLarge, len(t.home)+1)
	}
	cp := make([]byte, blockdev.BlockSize)
	copy(cp, data)
	t.home = append(t.home, n)
	t.data = append(t.data, cp)
	return nil
}

// Read returns the buffered image of block n if this transaction wrote it,
// giving read-your-writes semantics within a transaction.
func (t *Txn) Read(n uint64) ([]byte, bool) {
	for i, h := range t.home {
		if h == n {
			out := make([]byte, blockdev.BlockSize)
			copy(out, t.data[i])
			return out, true
		}
	}
	return nil, false
}

// Len reports the number of distinct blocks buffered.
func (t *Txn) Len() int { return len(t.home) }

// Abort discards the transaction.
func (t *Txn) Abort() {
	t.done = true
	t.home, t.data = nil, nil
}

// Commit makes the transaction durable: it appends descriptor, data images,
// and a commit block to the journal, syncs, then checkpoints the images to
// their home locations and syncs again. An empty transaction commits as a
// no-op.
func (t *Txn) Commit() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	if len(t.home) == 0 {
		return nil
	}
	l := t.log
	l.mu.Lock()
	defer l.mu.Unlock()

	needed := uint64(len(t.home) + 2) // descriptor + data + commit
	if needed > l.length {
		return fmt.Errorf("%w: txn needs %d blocks, journal has %d", ErrJournalFull, needed, l.length)
	}
	// Transactions never wrap: if the tail cannot hold this transaction,
	// start again from the beginning of the region. Recovery rescans the
	// whole region, so stale tail blocks are harmless.
	if l.head+needed > l.length {
		l.head = 0
	}
	txid := l.seq
	l.seq++

	// Descriptor block.
	desc := make([]byte, blockdev.BlockSize)
	binary.LittleEndian.PutUint32(desc[0:], magic)
	binary.LittleEndian.PutUint32(desc[4:], blockTypeDescriptor)
	binary.LittleEndian.PutUint64(desc[8:], txid)
	binary.LittleEndian.PutUint32(desc[16:], uint32(len(t.home)))
	for i, h := range t.home {
		binary.LittleEndian.PutUint64(desc[headerSize+8*i:], h)
	}
	if err := l.dev.WriteBlock(l.start+l.head, desc); err != nil {
		return fmt.Errorf("wal: write descriptor: %w", err)
	}

	// Data images + running checksum.
	sum := fnv.New64a()
	_, _ = sum.Write(desc)
	for i, img := range t.data {
		if err := l.dev.WriteBlock(l.start+l.head+1+uint64(i), img); err != nil {
			return fmt.Errorf("wal: write journal data: %w", err)
		}
		_, _ = sum.Write(img)
	}

	// Commit block.
	com := make([]byte, blockdev.BlockSize)
	binary.LittleEndian.PutUint32(com[0:], magic)
	binary.LittleEndian.PutUint32(com[4:], blockTypeCommit)
	binary.LittleEndian.PutUint64(com[8:], txid)
	binary.LittleEndian.PutUint64(com[16:], sum.Sum64())
	if err := l.dev.WriteBlock(l.start+l.head+1+uint64(len(t.home)), com); err != nil {
		return fmt.Errorf("wal: write commit: %w", err)
	}
	if err := l.dev.Sync(); err != nil {
		return fmt.Errorf("wal: sync journal: %w", err)
	}

	// Checkpoint: apply images to home locations.
	for i, h := range t.home {
		if err := l.dev.WriteBlock(h, t.data[i]); err != nil {
			return fmt.Errorf("wal: checkpoint block %d: %w", h, err)
		}
	}
	if err := l.dev.Sync(); err != nil {
		return fmt.Errorf("wal: sync checkpoint: %w", err)
	}

	l.head += needed
	l.stats.TxnsCommitted++
	l.stats.BlocksLogged += uint64(len(t.home))
	return nil
}

// replayTxn is one committed transaction found during recovery.
type replayTxn struct {
	txid uint64
	home []uint64
	data [][]byte
}

// Recover scans the journal region, validates transactions, and replays the
// committed ones in ascending transaction-id order. It returns the number of
// transactions replayed. Torn transactions (missing or corrupt commit
// blocks) are skipped, which is the crash-consistency contract.
func (l *Log) Recover() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()

	var txns []replayTxn
	buf := make([]byte, blockdev.BlockSize)
	var maxTxid uint64

	for i := uint64(0); i < l.length; {
		if err := l.dev.ReadBlock(l.start+i, buf); err != nil {
			// Unreadable journal block: resync by skipping it.
			i++
			continue
		}
		if binary.LittleEndian.Uint32(buf[0:]) != magic ||
			binary.LittleEndian.Uint32(buf[4:]) != blockTypeDescriptor {
			i++
			continue
		}
		txid := binary.LittleEndian.Uint64(buf[8:])
		ntags := binary.LittleEndian.Uint32(buf[16:])
		if ntags == 0 || ntags > uint32(MaxBlocksPerTxn) || i+uint64(ntags)+2 > l.length {
			i++
			continue
		}
		home := make([]uint64, ntags)
		for j := uint32(0); j < ntags; j++ {
			home[j] = binary.LittleEndian.Uint64(buf[headerSize+8*j:])
		}
		sum := fnv.New64a()
		_, _ = sum.Write(buf)
		data := make([][]byte, 0, ntags)
		ok := true
		for j := uint32(0); j < ntags; j++ {
			img := make([]byte, blockdev.BlockSize)
			if err := l.dev.ReadBlock(l.start+i+1+uint64(j), img); err != nil {
				ok = false
				break
			}
			_, _ = sum.Write(img)
			data = append(data, img)
		}
		if !ok {
			i++
			continue
		}
		com := make([]byte, blockdev.BlockSize)
		if err := l.dev.ReadBlock(l.start+i+1+uint64(ntags), com); err != nil {
			i++
			continue
		}
		if binary.LittleEndian.Uint32(com[0:]) != magic ||
			binary.LittleEndian.Uint32(com[4:]) != blockTypeCommit ||
			binary.LittleEndian.Uint64(com[8:]) != txid ||
			binary.LittleEndian.Uint64(com[16:]) != sum.Sum64() {
			// Torn transaction: no valid commit. Skip just the descriptor so
			// a later descriptor at an odd offset can still be found.
			i++
			continue
		}
		txns = append(txns, replayTxn{txid: txid, home: home, data: data})
		if txid > maxTxid {
			maxTxid = txid
		}
		i += uint64(ntags) + 2
	}

	// Replay in ascending txid order so later images win.
	for a := 0; a < len(txns); a++ {
		for b := a + 1; b < len(txns); b++ {
			if txns[b].txid < txns[a].txid {
				txns[a], txns[b] = txns[b], txns[a]
			}
		}
	}
	for _, tx := range txns {
		for i, h := range tx.home {
			if err := l.dev.WriteBlock(h, tx.data[i]); err != nil {
				return 0, fmt.Errorf("wal: replay block %d: %w", h, err)
			}
		}
	}
	if len(txns) > 0 {
		if err := l.dev.Sync(); err != nil {
			return 0, fmt.Errorf("wal: sync replay: %w", err)
		}
	}
	if maxTxid >= l.seq {
		l.seq = maxTxid + 1
	}
	l.stats.TxnsReplayed += uint64(len(txns))
	return len(txns), nil
}
