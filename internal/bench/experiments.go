package bench

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/baseline"
	"repro/internal/blockdev"
	"repro/internal/collect"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/cryptoshred"
	"repro/internal/dbfs"
	"repro/internal/gdprdata"
	"repro/internal/inode"
	"repro/internal/kernel"
	"repro/internal/lsm"
	"repro/internal/membrane"
	"repro/internal/plainfs"
	"repro/internal/ps"
	"repro/internal/rights"
	"repro/internal/simclock"
	"repro/internal/typedsl"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// --- F1: the motivation figure ---

func runF1L(w io.Writer, _ Params) error {
	if err := gdprdata.CheckShape(); err != nil {
		return err
	}
	return gdprdata.RenderLeft(w)
}

func runF1R(w io.Writer, _ Params) error {
	if err := gdprdata.CheckShape(); err != nil {
		return err
	}
	return gdprdata.RenderRight(w)
}

// --- F2V1: the journal-leak violation ---

func runF2V1(w io.Writer, p Params) error {
	n := p.subjects(200, 20)
	rng := xrand.New(p.Seed + 1)
	subjects := workload.SubjectIDs(n)

	// Baseline: GDPR-aware DB engine over a journaled file FS.
	bdev := blockdev.MustMem(1 << 15)
	eng, err := baseline.New(bdev, simclock.NewSim(simclock.Epoch))
	if err != nil {
		return err
	}
	if err := eng.CreateTable("user"); err != nil {
		return err
	}
	secrets := make(map[string]string, n)
	ids := make([]string, 0, n)
	for _, subject := range subjects {
		secret := "email=" + subject + "@private.example"
		secrets[subject] = secret
		id, err := eng.Insert("user", subject, map[string]string{"contact": secret},
			grantAll("analytics"), 0)
		if err != nil {
			return err
		}
		ids = append(ids, id)
	}
	// Engine-level erasure of half the subjects.
	deleted := 0
	for i, id := range ids {
		if i%2 == 0 {
			if err := eng.Delete(id); err != nil {
				return err
			}
			deleted++
		}
	}
	baselineResidues := 0
	for i, subject := range subjects {
		if i%2 != 0 {
			continue
		}
		if hits := blockdev.FindResidue(bdev, []byte(secrets[subject])); len(hits) > 0 {
			baselineResidues++
		}
	}

	// rgpdOS: same shape of workload through DBFS + crypto-erasure.
	sys, rsubjects, err := seedSystem(n, p.Seed+2, 1.0)
	if err != nil {
		return err
	}
	_ = rng
	rDeleted := 0
	for i, subject := range rsubjects {
		if i%2 == 0 {
			if _, err := sys.Rights().Erase(subject); err != nil {
				return err
			}
			rDeleted++
		}
	}
	rgpdResidues := 0
	for i, subject := range rsubjects {
		if i%2 != 0 {
			continue
		}
		// The stored plaintext was the generated name "(sXXXXXX)".
		if hits := sys.ResidueScan([]byte("(" + subject + ")")); len(hits) > 0 {
			rgpdResidues++
		}
	}

	table(w, []string{"system", "records", "erased", "subjects w/ residue", "RtbF violated"}, [][]string{
		{"baseline (Fig.2)", strconv.Itoa(n), strconv.Itoa(deleted), strconv.Itoa(baselineResidues), fmt.Sprintf("%t", baselineResidues > 0)},
		{"rgpdOS", strconv.Itoa(n), strconv.Itoa(rDeleted), strconv.Itoa(rgpdResidues), fmt.Sprintf("%t", rgpdResidues > 0)},
	})
	fmt.Fprintln(w, "  expectation: baseline > 0 residues (journal + free space), rgpdOS = 0 (only ciphertext on disk)")
	return nil
}

// --- F2V2: process-centric UAF vs data-centric domains ---

func runF2V2(w io.Writer, p Params) error {
	attempts := p.ops(1000, 50)

	// Baseline: stale pointers into a recycled heap read other PD.
	heap := baseline.NewHeap(true)
	leaks := 0
	for i := 0; i < attempts; i++ {
		pd1 := heap.Alloc([]byte("pd1-secret-" + strconv.Itoa(i)))
		heap.Free(pd1)
		_ = heap.Alloc([]byte("pd2-other-subject-" + strconv.Itoa(i)))
		got, err := heap.DerefStale(pd1)
		if err == nil && string(got) != "pd1-secret-"+strconv.Itoa(i) {
			leaks++
		}
	}

	// rgpdOS: zeroized domains make the stale reference fail.
	blocked := 0
	for i := 0; i < attempts; i++ {
		dom := kernel.NewDomain("inv-" + strconv.Itoa(i))
		if err := dom.Put("pd1", []byte("pd1-secret")); err != nil {
			return err
		}
		dom.Zeroize() // DED completed
		if _, err := dom.Get("pd1"); err != nil {
			blocked++
		}
	}

	table(w, []string{"memory model", "stale derefs", "cross-PD leaks", "blocked"}, [][]string{
		{"process-centric heap (baseline)", strconv.Itoa(attempts), strconv.Itoa(leaks), strconv.Itoa(attempts - leaks)},
		{"data-centric domain (rgpdOS)", strconv.Itoa(attempts), "0", strconv.Itoa(blocked)},
	})
	fmt.Fprintln(w, "  expectation: baseline leaks ~100% of recycled cells, rgpdOS blocks 100%")
	return nil
}

// --- F3: membrane enforcement across consent densities ---

func runF3(w io.Writer, p Params) error {
	n := p.subjects(200, 20)
	rows := make([][]string, 0, 5)
	for _, grantProb := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		sys, _, err := seedSystem(n, p.Seed+uint64(grantProb*100), grantProb)
		if err != nil {
			return err
		}
		if err := sys.PS().Register(computeAgeDecl(), computeAgeImpl(), false); err != nil {
			return err
		}
		res, err := sys.PS().Invoke(ps.InvokeRequest{Processing: "purpose3", TypeName: "user"})
		if err != nil {
			return err
		}
		filtered := 0
		for _, k := range sortedKeys(res.Filtered) {
			filtered += res.Filtered[k]
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", grantProb*100),
			strconv.Itoa(n),
			strconv.Itoa(res.Processed),
			strconv.Itoa(filtered),
		})
	}
	table(w, []string{"consent density", "records", "processed", "filtered by membrane"}, rows)
	fmt.Fprintln(w, "  expectation: processed tracks consent density exactly; no record crosses its membrane")
	return nil
}

// --- F4P: DED stage breakdown ---

func runF4P(w io.Writer, p Params) error {
	sizes := []int{1, 10, 100, 1000}
	if p.Small {
		sizes = []int{1, 10, 50}
	}
	rows := make([][]string, 0, len(sizes))
	for _, n := range sizes {
		sys, _, err := seedSystem(n, p.Seed+uint64(n), 1.0)
		if err != nil {
			return err
		}
		if err := sys.PS().Register(computeAgeDecl(), computeAgeImpl(), false); err != nil {
			return err
		}
		res, err := sys.PS().Invoke(ps.InvokeRequest{Processing: "purpose3", TypeName: "user"})
		if err != nil {
			return err
		}
		t := res.Timings
		rows = append(rows, []string{
			strconv.Itoa(n), us(t.Type2Req), us(t.LoadMembrane), us(t.Filter),
			us(t.LoadData), us(t.Execute), us(t.Store + t.BuildMembrane), us(t.Return), us(t.Total()),
		})
	}
	table(w, []string{"records", "type2req us", "load_membrane us", "filter us",
		"load_data us", "execute us", "build+store us", "return us", "total us"}, rows)
	fmt.Fprintln(w, "  expectation: load_membrane + load_data dominate and scale with record count")
	return nil
}

// --- L1: the DSL on Listing 1 ---

func runL1(w io.Writer, _ Params) error {
	decl, err := typedsl.ParseOne(listing1DSL)
	if err != nil {
		return err
	}
	sch, err := typedsl.Compile(decl, aliasOpts())
	if err != nil {
		return err
	}
	reparsed, err := typedsl.ParseOne(typedsl.Format(decl))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  parsed type %q: %d fields, %d views, %d consent rows, %d collection rows\n",
		decl.Name, len(decl.Fields), len(decl.Views), len(decl.Consent), len(decl.Collection))
	fmt.Fprintf(w, "  quirks honoured: consent %q -> view %q; sensitivity %q -> %v; view field \"age\" -> %q\n",
		"ano", sch.DefaultConsent["purpose3"].View, decl.Sensitivity, sch.Sensitivity, "year_of_birthdate")
	fmt.Fprintf(w, "  ttl %q -> %v; origin -> %v; print/parse round trip ok=%t\n",
		decl.Age, sch.DefaultTTL, sch.Origin, reparsed.Name == decl.Name)
	return nil
}

// --- L23: Listings 2-3 programming model ---

func runL23(w io.Writer, p Params) error {
	sys, subjects, err := seedSystem(p.subjects(3, 3), p.Seed+23, 1.0)
	if err != nil {
		return err
	}
	if err := sys.PS().Register(computeAgeDecl(), computeAgeImpl(), false); err != nil {
		return err
	}
	res, err := sys.PS().Invoke(ps.InvokeRequest{Processing: "purpose3", TypeName: "user"})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  ps_invoke(purpose3/compute_age) over %d users: processed=%d outputs=%v\n",
		len(subjects), res.Processed, res.Outputs)
	// purpose2 is "none" in the default consent: an identical function
	// registered under purpose2 processes nothing.
	decl2 := computeAgeDecl()
	decl2.Name = "purpose2"
	impl2 := computeAgeImpl()
	impl2.Purpose = "purpose2"
	if err := sys.PS().Register(decl2, impl2, false); err != nil {
		return err
	}
	res2, err := sys.PS().Invoke(ps.InvokeRequest{Processing: "purpose2", TypeName: "user"})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  ps_invoke(purpose2, consent none): processed=%d filtered=%v (denied by every membrane)\n",
		res2.Processed, res2.Filtered)
	fmt.Fprintln(w, "  expectation: purpose3 processes all, purpose2 processes none")
	return nil
}

// --- IA: right of access ---

func runIA(w io.Writer, p Params) error {
	n := p.subjects(100, 10)
	sys, subjects, err := seedSystem(n, p.Seed+4, 1.0)
	if err != nil {
		return err
	}
	if err := sys.PS().Register(computeAgeDecl(), computeAgeImpl(), false); err != nil {
		return err
	}
	// Build processing history.
	for i := 0; i < 3; i++ {
		if _, err := sys.PS().Invoke(ps.InvokeRequest{Processing: "purpose3", TypeName: "user"}); err != nil {
			return err
		}
	}
	start := time.Now()
	var bytesTotal int
	for _, subject := range subjects {
		report, err := sys.Rights().Access(subject)
		if err != nil {
			return err
		}
		// rights.ExportJSON is exercised via the engine; size the payload.
		raw, err := exportJSON(report)
		if err != nil {
			return err
		}
		bytesTotal += len(raw)
	}
	elapsed := time.Since(start)
	table(w, []string{"subjects", "history entries", "avg report bytes", "avg latency us"}, [][]string{{
		strconv.Itoa(n),
		strconv.Itoa(sys.Audit().Len()),
		strconv.Itoa(bytesTotal / n),
		perOp(elapsed, n),
	}})
	fmt.Fprintln(w, "  expectation: machine-readable export with meaningful keys + per-PD processing log (see §4)")
	return nil
}

// --- IF: right to be forgotten ---

func runIF(w io.Writer, p Params) error {
	n := p.subjects(100, 10)
	sys, subjects, err := seedSystem(n, p.Seed+5, 1.0)
	if err != nil {
		return err
	}
	start := time.Now()
	erased := 0
	for _, subject := range subjects {
		rep, err := sys.Rights().Erase(subject)
		if err != nil {
			return err
		}
		erased += len(rep.Erased)
	}
	elapsed := time.Since(start)
	residues := 0
	for _, subject := range subjects {
		if hits := sys.ResidueScan([]byte("(" + subject + ")")); len(hits) > 0 {
			residues++
		}
	}
	// Authority recovery still works for one sample (legal investigation).
	sampleOK := false
	if pdids, err := sys.DBFS().ListBySubject(sys.DEDToken(), subjects[0]); err == nil && len(pdids) > 0 {
		m, err := sys.DBFS().GetMembrane(sys.DEDToken(), pdids[0])
		if err == nil && m.Erased {
			if escrow, err := sys.Vault().Escrow(m.EscrowRef); err == nil {
				if ct, err := sys.DBFS().RawCiphertext(sys.DEDToken(), pdids[0]); err == nil {
					if _, err := sys.Authority().Recover(escrow, ct); err == nil {
						sampleOK = true
					}
				}
			}
		}
	}
	table(w, []string{"subjects", "pd erased", "avg latency us", "plaintext residues", "authority recovery"}, [][]string{{
		strconv.Itoa(n), strconv.Itoa(erased), perOp(elapsed, erased),
		strconv.Itoa(residues), fmt.Sprintf("%t", sampleOK),
	}})
	fmt.Fprintln(w, "  expectation: 0 residues; operator locked out; authority can still decrypt (§4 model)")
	return nil
}

// --- OV1: end-to-end overhead ---

func runOV1(w io.Writer, p Params) error {
	n := p.subjects(100, 10)
	ops := p.ops(500, 50)
	rng := xrand.New(p.Seed + 6)
	subjects := workload.SubjectIDs(n)

	// rgpdOS path: ps_invoke per single-record read.
	sys, _, err := seedSystem(n, p.Seed+6, 1.0)
	if err != nil {
		return err
	}
	if err := sys.PS().Register(computeAgeDecl(), computeAgeImpl(), false); err != nil {
		return err
	}
	picker := workload.NewPicker(rng.Split(), subjects, 1.2)
	start := time.Now()
	for i := 0; i < ops; i++ {
		subject := picker.Pick()
		if _, err := sys.PS().Invoke(ps.InvokeRequest{
			Processing: "purpose3", TypeName: "user", SubjectFilter: subject,
		}); err != nil {
			return err
		}
	}
	rgpdTime := time.Since(start)

	// Baseline path: engine-level consent check + heap load.
	bdev := blockdev.MustMem(1 << 15)
	eng, err := baseline.New(bdev, simclock.NewSim(simclock.Epoch))
	if err != nil {
		return err
	}
	if err := eng.CreateTable("user"); err != nil {
		return err
	}
	ids := make(map[string]string, n)
	for _, subject := range subjects {
		id, err := eng.Insert("user", subject, map[string]string{"yob": "1990"}, grantAll("purpose3"), 0)
		if err != nil {
			return err
		}
		ids[subject] = id
	}
	start = time.Now()
	for i := 0; i < ops; i++ {
		if _, err := eng.ProcessToHeap(ids[picker.Pick()], "purpose3"); err != nil {
			return err
		}
	}
	baseTime := time.Since(start)

	// No-GDPR path: raw in-memory map (the lower bound).
	raw := make(map[string]string, n)
	for _, subject := range subjects {
		raw[subject] = "1990"
	}
	start = time.Now()
	sink := 0
	for i := 0; i < ops; i++ {
		sink += len(raw[picker.Pick()])
	}
	rawTime := time.Since(start)
	_ = sink

	ratio := func(a, b time.Duration) string {
		if b == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1fx", float64(a)/float64(b))
	}
	table(w, []string{"system", "ops", "us/op", "vs baseline", "vs raw map"}, [][]string{
		{"raw map (no GDPR)", strconv.Itoa(ops), perOp(rawTime, ops), "-", "1x"},
		{"baseline DB engine", strconv.Itoa(ops), perOp(baseTime, ops), "1x", ratio(baseTime, rawTime)},
		{"rgpdOS ps_invoke", strconv.Itoa(ops), perOp(rgpdTime, ops), ratio(rgpdTime, baseTime), ratio(rgpdTime, rawTime)},
	})
	fmt.Fprintln(w, "  expectation: rgpdOS pays membrane+DED+crypto overhead; that is the price of OS-level enforcement")
	return nil
}

// --- OV2: membrane cost attribution ---

// runOV2 isolates what the membrane mechanism costs inside the DED
// pipeline: the membrane-load stage (fetching membranes before data — the
// paper's two-request design) and the filter stage (the consent decision).
// There is no "membrane off" configuration in rgpdOS by design, so the
// ablation is attribution: membrane stages vs the rest, swept over consent
// densities (denied records skip data loading, so denial is CHEAPER).
func runOV2(w io.Writer, p Params) error {
	n := p.subjects(200, 20)
	rows := make([][]string, 0, 3)
	for _, grantProb := range []float64{1.0, 0.5, 0.0} {
		sys, _, err := seedSystem(n, p.Seed+7, grantProb)
		if err != nil {
			return err
		}
		if err := sys.PS().Register(computeAgeDecl(), computeAgeImpl(), false); err != nil {
			return err
		}
		res, err := sys.PS().Invoke(ps.InvokeRequest{Processing: "purpose3", TypeName: "user"})
		if err != nil {
			return err
		}
		t := res.Timings
		membraneCost := t.LoadMembrane + t.Filter
		total := t.Total()
		share := 0.0
		if total > 0 {
			share = float64(membraneCost) / float64(total) * 100
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", grantProb*100),
			strconv.Itoa(res.Processed),
			us(t.LoadMembrane), us(t.Filter), us(total),
			fmt.Sprintf("%.1f%%", share),
		})
	}
	table(w, []string{"consent density", "processed", "load_membrane us", "filter us", "pipeline us", "membrane share"}, rows)
	fmt.Fprintln(w, "  expectation: membrane decision is a small, fixed share; low consent density SHRINKS total cost (denied PD skips data load)")
	return nil
}

// --- OV3: purpose-kernel IPC cost ---

func runOV3(w io.Writer, p Params) error {
	n := p.subjects(100, 10)
	rows := make([][]string, 0, 2)
	for _, direct := range []bool{false, true} {
		opts := bootOpts(n)
		opts.DirectIO = direct
		sys, err := core.Boot(opts)
		if err != nil {
			return err
		}
		if err := sys.DeclareTypesDSL(listing1DSL, aliasOpts()); err != nil {
			return err
		}
		form := collect.NewWebFormSource("user_form.html")
		sys.RegisterSource("user", form)
		rng := xrand.New(p.Seed + 8)
		subjects := workload.SubjectIDs(n)
		for _, subject := range subjects {
			form.Submit(subject, workload.UserRecord(rng, subject))
		}
		start := time.Now()
		if _, err := sys.Acquire("user", "web_form", subjects); err != nil {
			return err
		}
		elapsed := time.Since(start)
		bus := sys.Stats().Bus
		name := "split kernels (bus IO)"
		if direct {
			name = "monolithic (direct IO)"
		}
		rows = append(rows, []string{
			name, strconv.Itoa(n), strconv.FormatUint(bus.Messages, 10),
			fmt.Sprintf("%.2f", bus.SimLatency.Seconds()*1e3), us(elapsed),
		})
	}
	table(w, []string{"topology", "inserts", "bus messages", "sim IPC ms", "wall us"}, rows)
	fmt.Fprintln(w, "  expectation: the purpose-kernel split pays one bus hop per block IO; monolithic pays zero")
	return nil
}

// --- OV4: DBFS vs plainfs ---

func runOV4(w io.Writer, p Params) error {
	n := p.subjects(500, 50)
	// DBFS via the full system.
	sys, subjects, err := seedSystem(n, p.Seed+9, 1.0)
	if err != nil {
		return err
	}
	tok := sys.DEDToken()
	start := time.Now()
	for _, subject := range subjects {
		if _, err := sys.DBFS().ListBySubject(tok, subject); err != nil {
			return err
		}
	}
	dbfsLookup := time.Since(start)

	// plainfs with one file per record.
	dev := blockdev.MustMem(1 << 15)
	pfs, err := plainfs.Format(dev, inode.Options{NInodes: 8192, JournalBlocks: 256, Clock: simclock.NewSim(simclock.Epoch)})
	if err != nil {
		return err
	}
	if err := pfs.Mkdir("/users"); err != nil {
		return err
	}
	start = time.Now()
	for i, subject := range subjects {
		if err := pfs.WriteFile("/users/"+subject, []byte("record-"+strconv.Itoa(i))); err != nil {
			return err
		}
	}
	plainInsert := time.Since(start)
	start = time.Now()
	for _, subject := range subjects {
		if _, err := pfs.ReadFile("/users/" + subject); err != nil {
			return err
		}
	}
	plainLookup := time.Since(start)

	stats := sys.Stats().DBFS
	table(w, []string{"filesystem", "records", "insert us/rec", "lookup us/rec"}, [][]string{
		{"DBFS (typed, membraned, encrypted)", strconv.FormatUint(stats.Inserts, 10), "(see OV3 acquire)", perOp(dbfsLookup, n)},
		{"plainfs (files of bytes)", strconv.Itoa(n), perOp(plainInsert, n), perOp(plainLookup, n)},
	})
	fmt.Fprintln(w, "  expectation: DBFS pays typing+membrane+crypto per record; plainfs sees only bytes (and leaks them)")
	return nil
}

// --- OV5: sensitive-field separation ---

func runOV5(w io.Writer, p Params) error {
	n := p.subjects(200, 20)
	rows := make([][]string, 0, 3)
	for sens := 0; sens <= 2; sens++ {
		sys, err := core.Boot(bootOpts(n))
		if err != nil {
			return err
		}
		sch := &dbfs.Schema{
			Name: "rec",
			Fields: []dbfs.Field{
				{Name: "a", Type: dbfs.TypeString, Sensitive: sens >= 1},
				{Name: "b", Type: dbfs.TypeString, Sensitive: sens >= 2},
				{Name: "c", Type: dbfs.TypeInt},
			},
			DefaultConsent: map[string]membrane.Grant{"p": {Kind: membrane.GrantAll}},
		}
		if err := sys.CreateType(sch); err != nil {
			return err
		}
		tok := sys.DEDToken()
		subjects := workload.SubjectIDs(n)
		start := time.Now()
		pdids := make([]string, 0, n)
		for _, subject := range subjects {
			pdid, err := sys.DBFS().Insert(tok, "rec", subject, dbfs.Record{
				"a": dbfs.S("ssn-000-00-0000"), "b": dbfs.S("blood-type-o"), "c": dbfs.I(1),
			}, nil)
			if err != nil {
				return err
			}
			pdids = append(pdids, pdid)
		}
		insert := time.Since(start)
		start = time.Now()
		for _, pdid := range pdids {
			if _, err := sys.DBFS().GetRecord(tok, pdid); err != nil {
				return err
			}
		}
		get := time.Since(start)
		rows = append(rows, []string{
			strconv.Itoa(sens), perOp(insert, n), perOp(get, n),
		})
	}
	table(w, []string{"sensitive fields", "insert us/rec", "get us/rec"}, rows)
	fmt.Fprintln(w, "  expectation: each sensitive split adds one extra inode + one extra data key per record")
	return nil
}

// --- OV6: TTL sweeper ---

func runOV6(w io.Writer, p Params) error {
	n := p.subjects(200, 20)
	rows := make([][]string, 0, 3)
	for _, expireFrac := range []float64{0.25, 0.5, 1.0} {
		sys, err := core.Boot(bootOpts(n))
		if err != nil {
			return err
		}
		if err := sys.DeclareTypesDSL(listing1DSL, aliasOpts()); err != nil {
			return err
		}
		form := collect.NewWebFormSource("user_form.html")
		sys.RegisterSource("user", form)
		clk, ok := sys.SimClock()
		if !ok {
			return fmt.Errorf("bench: sim clock required")
		}
		rng := xrand.New(p.Seed + 11)
		subjects := workload.SubjectIDs(n)
		oldN := int(expireFrac * float64(n))
		acquire := func(batch []string) error {
			for _, subject := range batch {
				form.Submit(subject, workload.UserRecord(rng, subject))
			}
			_, err := sys.Acquire("user", "web_form", batch)
			return err
		}
		// Old batch at the epoch; fresh batch 370 days later. TTL is 1Y,
		// so at sweep time only the old batch has expired.
		if err := acquire(subjects[:oldN]); err != nil {
			return err
		}
		clk.Advance(370 * 24 * time.Hour)
		if oldN < n {
			if err := acquire(subjects[oldN:]); err != nil {
				return err
			}
		}
		start := time.Now()
		deleted, err := sys.Rights().SweepExpired()
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		if len(deleted) != oldN {
			return fmt.Errorf("bench: OV6 swept %d, want %d", len(deleted), oldN)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", expireFrac*100), strconv.Itoa(len(deleted)), us(elapsed), perOp(elapsed, len(deleted)),
		})
	}
	table(w, []string{"expired fraction", "swept", "total us", "us/record"}, rows)
	fmt.Fprintln(w, "  expectation: sweep cost is linear in expired records (membrane scan + physical delete)")
	return nil
}

// --- SC1: subject-sharded concurrency scaling ---

// runSC1 measures the PR-1 refactor: per-subject invocations dispatched
// through ps.InvokeBatch onto the DED worker pool, against the serial
// one-at-a-time loop the system was limited to before. Each invocation
// targets a distinct subject, so the subject-sharded DBFS locks never
// contend and the executor overlaps the per-record processing latency.
func runSC1(w io.Writer, p Params) error {
	n := p.subjects(64, 16)
	sys, subjects, err := seedSystem(n, p.Seed+13, 1)
	if err != nil {
		return err
	}
	if err := sys.PS().Register(ScoreDecl(), ScoreImpl(), false); err != nil {
		return err
	}
	reqs := make([]ps.InvokeRequest, len(subjects))
	for i, subject := range subjects {
		reqs[i] = ps.InvokeRequest{Processing: "purpose1", TypeName: "user", SubjectFilter: subject}
	}

	// Serial baseline: the pre-sharding execution model.
	start := time.Now()
	for _, req := range reqs {
		res, err := sys.PS().Invoke(req)
		if err != nil {
			return err
		}
		if res.Processed != 1 {
			return fmt.Errorf("bench: SC1 serial processed %d, want 1", res.Processed)
		}
	}
	serial := time.Since(start)
	rows := [][]string{{"serial", us(serial), perOp(serial, n), "1.00x"}}

	for _, workers := range []int{1, 4, 16} {
		start = time.Now()
		for _, item := range sys.PS().InvokeBatch(reqs, workers) {
			if item.Err != nil {
				return item.Err
			}
			if item.Res.Processed != 1 {
				return fmt.Errorf("bench: SC1 batch processed %d, want 1", item.Res.Processed)
			}
		}
		elapsed := time.Since(start)
		rows = append(rows, []string{
			fmt.Sprintf("batch/%-2d", workers), us(elapsed), perOp(elapsed, n),
			fmt.Sprintf("%.2fx", float64(serial)/float64(elapsed)),
		})
	}
	table(w, []string{"mode (workers)", "total us", "us/invocation", "speedup"}, rows)
	fmt.Fprintln(w, "  expectation: >=2x serial throughput at 4 workers — distinct subjects hit distinct")
	fmt.Fprintln(w, "  DBFS lock shards, and the executor overlaps each DED's per-record processing latency")
	return nil
}

// exportJSON sizes an access report payload (shared with runIA).
func exportJSON(report *rights.AccessReport) ([]byte, error) {
	return rights.ExportJSON(report)
}

// --- SC2: storage-stack scaling — group commit x per-shard FS ---

// SC2Row is one configuration's measurement in the SC2 sweep, serialized
// into BENCH_SC2.json for the CI regression gate.
type SC2Row struct {
	Config            string  `json:"config"`
	FSInstances       int     `json:"fs_instances"`
	CommitWindowUS    int64   `json:"commit_window_us"`
	GroupCommit       bool    `json:"group_commit"`
	Workers           int     `json:"workers"`
	Inserts           int     `json:"inserts"`
	WallUS            int64   `json:"wall_us"`
	InsertsPerSec     float64 `json:"inserts_per_sec"`
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline"`
	TxnsPerGroup      float64 `json:"txns_per_group"`
}

// SC2Report is the BENCH_SC2.json schema.
type SC2Report struct {
	Experiment string `json:"experiment"`
	Schema     int    `json:"schema"`
	// Comment carries provenance notes (the checked-in baseline explains
	// that its summary is a conservative cross-machine floor).
	Comment  string   `json:"comment,omitempty"`
	Workers  int      `json:"workers"`
	Subjects int      `json:"subjects"`
	Rows     []SC2Row `json:"rows"`
	Summary  struct {
		BaselineInsertsPerSec float64 `json:"baseline_inserts_per_sec"`
		BestInsertsPerSec     float64 `json:"best_inserts_per_sec"`
		BestConfig            string  `json:"best_config"`
		BestSpeedup           float64 `json:"best_speedup"`
	} `json:"summary"`
}

// runSC2 measures this PR's storage-stack refactor: concurrent inserts from
// a fixed worker pool, swept over commit-window size and FS-instance count.
// The PD disk sleeps its flush cost (blockdev.LatencyModel.Sleep), so what
// the wall clock sees is exactly what the refactor targets: the PR-1
// baseline (one filesystem, one transaction per flush) pays every barrier
// serially through one journal, group commit amortizes barriers across
// concurrently arriving transactions, and per-shard FS instances let the
// remaining barriers wait in parallel.
func runSC2(w io.Writer, p Params) error {
	n := p.subjects(256, 48)
	const workers = 8
	syncCost := 100 * time.Microsecond
	if p.Small {
		syncCost = 50 * time.Microsecond
	}
	type cfg struct {
		name   string
		fs     int
		window time.Duration
		batch  int // 1 disables group commit, 0 = wal default
	}
	cfgs := []cfg{
		{"pr1-baseline fs=1 nogroup", 1, 0, 1},
		{"group fs=1", 1, 0, 0},
		{"shard fs=4 nogroup", 4, 0, 1},
		{"shard+group fs=4", 4, 0, 0},
		{"shard+group fs=4 win=100us", 4, 100 * time.Microsecond, 0},
		{"shard+group fs=8", 8, 0, 0},
	}
	if p.Small {
		cfgs = []cfg{cfgs[0], cfgs[1], cfgs[3], cfgs[5]}
	}

	report := SC2Report{Experiment: "SC2", Schema: 1, Workers: workers, Subjects: n}
	rows := make([][]string, 0, len(cfgs))
	for _, c := range cfgs {
		opts := bootOpts(n)
		opts.FSInstances = c.fs
		opts.CommitWindow = c.window
		opts.GroupCommitMaxBatch = c.batch
		opts.Workers = workers
		opts.PDLatency = blockdev.LatencyModel{SyncCost: syncCost, Sleep: true}
		sys, err := core.Boot(opts)
		if err != nil {
			return err
		}
		if err := sys.DeclareTypesDSL(listing1DSL, aliasOpts()); err != nil {
			return err
		}
		// Pre-generate records off the clock; the timed region is pure
		// concurrent insert load against DBFS.
		rng := xrand.New(p.Seed + 21)
		subjects := workload.SubjectIDs(n)
		records := make([]dbfs.Record, n)
		for i, subject := range subjects {
			records[i] = workload.UserRecord(rng, subject)
		}
		tok := sys.DEDToken()
		var (
			wg   sync.WaitGroup
			next atomic.Int64
		)
		insertErrs := make(chan error, workers)
		start := time.Now()
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					if _, err := sys.DBFS().Insert(tok, "user", subjects[i], records[i], nil); err != nil {
						insertErrs <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(insertErrs)
		for err := range insertErrs {
			return fmt.Errorf("bench: SC2 %s: %w", c.name, err)
		}
		js := sys.DBFS().JournalStats()
		txnsPerGroup := 0.0
		if js.GroupCommits > 0 {
			txnsPerGroup = float64(js.TxnsCommitted) / float64(js.GroupCommits)
		}
		row := SC2Row{
			Config:         c.name,
			FSInstances:    c.fs,
			CommitWindowUS: c.window.Microseconds(),
			GroupCommit:    c.batch != 1,
			Workers:        workers,
			Inserts:        n,
			WallUS:         elapsed.Microseconds(),
			InsertsPerSec:  float64(n) / elapsed.Seconds(),
			TxnsPerGroup:   txnsPerGroup,
		}
		report.Rows = append(report.Rows, row)
	}
	base := report.Rows[0].InsertsPerSec
	report.Summary.BaselineInsertsPerSec = base
	for i := range report.Rows {
		r := &report.Rows[i]
		if base > 0 {
			r.SpeedupVsBaseline = r.InsertsPerSec / base
		}
		if r.InsertsPerSec > report.Summary.BestInsertsPerSec {
			report.Summary.BestInsertsPerSec = r.InsertsPerSec
			report.Summary.BestConfig = r.Config
			report.Summary.BestSpeedup = r.SpeedupVsBaseline
		}
		rows = append(rows, []string{
			r.Config, strconv.Itoa(r.FSInstances), strconv.FormatInt(r.CommitWindowUS, 10),
			fmt.Sprintf("%t", r.GroupCommit), strconv.Itoa(r.Inserts),
			fmt.Sprintf("%.0f", r.InsertsPerSec), fmt.Sprintf("%.1f", r.TxnsPerGroup),
			fmt.Sprintf("%.2fx", r.SpeedupVsBaseline),
		})
	}
	table(w, []string{"config", "fs", "window us", "group", "inserts", "inserts/s", "txns/group", "speedup"}, rows)
	fmt.Fprintln(w, "  expectation: group commit shrinks flush count (txns/group > 1), per-shard FS overlaps the")
	fmt.Fprintln(w, "  remaining flushes; combined >=2x the PR-1 baseline at 8 workers")
	return writeJSON(p, "SC2", &report)
}

// --- SC3: read-path scaling — membrane cache x parallel rights sweeps ---

// SC3Row is one configuration's measurement in the SC3 sweep, serialized
// into BENCH_SC3.json for the CI regression gate.
type SC3Row struct {
	Config string `json:"config"`
	// Mode is "readloop" (raw concurrent GetMembrane load), "access"
	// (subject-access reports) or "sweep" (TTL sweeper).
	Mode    string `json:"mode"`
	Cache   bool   `json:"cache"`
	Overlap bool   `json:"overlap,omitempty"`
	Workers int    `json:"workers"`
	Ops     int    `json:"ops"`
	WallUS  int64  `json:"wall_us"`
	// OpsPerSec is membrane reads/s (readloop), reports/s (access) or
	// deletions/s (sweep).
	OpsPerSec float64 `json:"ops_per_sec"`
	// Speedup is relative to the mode's baseline row (cache off for
	// readloop, one worker for access/sweep).
	Speedup      float64 `json:"speedup"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// SC3Report is the BENCH_SC3.json schema.
type SC3Report struct {
	Experiment string `json:"experiment"`
	Schema     int    `json:"schema"`
	// Comment carries provenance notes (the checked-in baseline explains
	// that its summary is a conservative cross-machine floor).
	Comment  string   `json:"comment,omitempty"`
	Workers  int      `json:"workers"`
	Subjects int      `json:"subjects"`
	Rows     []SC3Row `json:"rows"`
	Summary  struct {
		// CacheSpeedup* compare cache on vs off on the same readloop shape.
		CacheSpeedupDisjoint float64 `json:"cache_speedup_disjoint"`
		CacheSpeedupOverlap  float64 `json:"cache_speedup_overlap"`
		// AccessSpeedup / SweepSpeedup compare the parallel rights engine
		// at the full worker pool vs one worker.
		AccessSpeedup float64 `json:"access_speedup"`
		SweepSpeedup  float64 `json:"sweep_speedup"`
	} `json:"summary"`
}

// runSC3 measures this PR's read-path work. Phase one is a membrane-read
// contention sweep: a fixed worker pool hammers GetMembrane over disjoint
// vs overlapping record batches, with the decoded-membrane cache enabled vs
// disabled. The PD disk sleeps its per-block read cost, so what the cache
// removes — the inode walk and device reads behind every membrane fetch,
// all serialized behind one filesystem lock — is wall-clock visible, on top
// of the JSON decode it also skips. Every fetched membrane is identity-
// checked, so the cached and uncached runs demonstrably serve the same
// answers. Phase two measures the parallel rights engine on the now-cheap
// read path: subject-access reports and the TTL sweeper at 1 worker vs the
// full pool, on a machine whose per-shard FS instances (SC2) let the
// per-record device time actually overlap.
func runSC3(w io.Writer, p Params) error {
	n := p.subjects(48, 12)
	const perSubject = 4
	const workers = 8
	reads := p.ops(2048, 768)
	lat := blockdev.DefaultLatency()
	lat.Sleep = true

	// seed boots a machine with n subjects x perSubject records inserted
	// directly through DBFS (membranes default from the Listing 1 schema:
	// TTL 1Y, purpose1/3 consented).
	seed := func(cache, fsInstances int) (*core.System, []string, []string, error) {
		opts := bootOpts(n * perSubject)
		opts.MembraneCache = cache
		opts.FSInstances = fsInstances
		opts.Workers = workers
		opts.PDLatency = lat
		// Ablation isolation: the block buffer cache (SC5) would absorb
		// the very device reads whose cost this experiment sweeps, hiding
		// the membrane cache's effect in both arms. Disable it so SC3
		// keeps measuring the read path against raw device latency.
		opts.BlockCache = -1
		sys, err := core.Boot(opts)
		if err != nil {
			return nil, nil, nil, err
		}
		if err := sys.DeclareTypesDSL(listing1DSL, aliasOpts()); err != nil {
			return nil, nil, nil, err
		}
		rng := xrand.New(p.Seed + 31)
		subjects := workload.SubjectIDs(n)
		tok := sys.DEDToken()
		pdids := make([]string, 0, n*perSubject)
		for _, subject := range subjects {
			for k := 0; k < perSubject; k++ {
				pdid, err := sys.DBFS().Insert(tok, "user", subject, workload.UserRecord(rng, subject), nil)
				if err != nil {
					return nil, nil, nil, err
				}
				pdids = append(pdids, pdid)
			}
		}
		return sys, subjects, pdids, nil
	}

	// runRead drives the read loop: each worker issues reads/workers
	// GetMembrane calls over its batch (its own partition when disjoint,
	// the full record list when overlapping) and verifies every membrane's
	// identity against the pdid it asked for.
	runRead := func(sys *core.System, pdids []string, overlap bool) (time.Duration, error) {
		tok := sys.DEDToken()
		per := reads / workers
		var wg sync.WaitGroup
		errCh := make(chan error, workers)
		start := time.Now()
		for wk := 0; wk < workers; wk++ {
			batch := pdids
			if !overlap {
				chunk := (len(pdids) + workers - 1) / workers
				lo := wk * chunk
				if lo >= len(pdids) {
					batch = nil
				} else {
					hi := min(lo+chunk, len(pdids))
					batch = pdids[lo:hi]
				}
			}
			wg.Add(1)
			go func(wk int, batch []string) {
				defer wg.Done()
				if len(batch) == 0 {
					return
				}
				for k := 0; k < per; k++ {
					pdid := batch[(wk+k)%len(batch)]
					m, err := sys.DBFS().GetMembrane(tok, pdid)
					if err != nil {
						errCh <- err
						return
					}
					if m.PDID != pdid {
						errCh <- fmt.Errorf("bench: SC3 read %s got membrane of %s", pdid, m.PDID)
						return
					}
				}
			}(wk, batch)
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(errCh)
		for err := range errCh {
			return 0, err
		}
		return elapsed, nil
	}

	report := SC3Report{Experiment: "SC3", Schema: 1, Workers: workers, Subjects: n}
	addRow := func(r SC3Row) { report.Rows = append(report.Rows, r) }

	// Phase one: the cache ablation, fresh machine per row so hit rates and
	// device state are comparable.
	baselines := map[bool]float64{} // overlap -> cache-off reads/s
	for _, cfg := range []struct {
		name    string
		cache   int
		overlap bool
	}{
		{"readloop nocache disjoint", -1, false},
		{"readloop cache disjoint", 0, false},
		{"readloop nocache overlap", -1, true},
		{"readloop cache overlap", 0, true},
	} {
		sys, _, pdids, err := seed(cfg.cache, 1)
		if err != nil {
			return fmt.Errorf("bench: SC3 %s: %w", cfg.name, err)
		}
		elapsed, err := runRead(sys, pdids, cfg.overlap)
		if err != nil {
			return fmt.Errorf("bench: SC3 %s: %w", cfg.name, err)
		}
		hitRate := cacheHitRate(sys)
		ops := (reads / workers) * workers
		row := SC3Row{
			Config: cfg.name, Mode: "readloop", Cache: cfg.cache >= 0,
			Overlap: cfg.overlap, Workers: workers, Ops: ops,
			WallUS:    elapsed.Microseconds(),
			OpsPerSec: float64(ops) / elapsed.Seconds(),
			Speedup:   1, CacheHitRate: hitRate,
		}
		if cfg.cache < 0 {
			baselines[cfg.overlap] = row.OpsPerSec
		} else if base := baselines[cfg.overlap]; base > 0 {
			row.Speedup = row.OpsPerSec / base
			if cfg.overlap {
				report.Summary.CacheSpeedupOverlap = row.Speedup
			} else {
				report.Summary.CacheSpeedupDisjoint = row.Speedup
			}
		}
		addRow(row)
	}

	// Phase two: rights-engine scaling with the cache on and the PD disk
	// split across per-shard FS instances (fs=8), 1 worker vs the pool.
	var accessBase, sweepBase float64
	for _, rw := range []int{1, workers} {
		sys, subjects, _, err := seed(0, 8)
		if err != nil {
			return fmt.Errorf("bench: SC3 access: %w", err)
		}
		rw := rw
		if err := sys.ApplyTuning(core.Tuning{RightsWorkers: &rw}); err != nil {
			return fmt.Errorf("bench: SC3 access: %w", err)
		}
		start := time.Now()
		reps, err := sys.Rights().AccessBatch(subjects)
		if err != nil {
			return fmt.Errorf("bench: SC3 access: %w", err)
		}
		elapsed := time.Since(start)
		for i, rep := range reps {
			if got := len(rep.Data["user"]); got != perSubject {
				return fmt.Errorf("bench: SC3 access %s exported %d records, want %d", subjects[i], got, perSubject)
			}
		}
		row := SC3Row{
			Config: fmt.Sprintf("access workers=%d", rw), Mode: "access",
			Cache: true, Workers: rw, Ops: n,
			WallUS:    elapsed.Microseconds(),
			OpsPerSec: float64(n) / elapsed.Seconds(),
			Speedup:   1, CacheHitRate: cacheHitRate(sys),
		}
		if rw == 1 {
			accessBase = row.OpsPerSec
		} else if accessBase > 0 {
			row.Speedup = row.OpsPerSec / accessBase
			report.Summary.AccessSpeedup = row.Speedup
		}
		addRow(row)
	}
	for _, rw := range []int{1, workers} {
		sys, _, pdids, err := seed(0, 8)
		if err != nil {
			return fmt.Errorf("bench: SC3 sweep: %w", err)
		}
		clk, ok := sys.SimClock()
		if !ok {
			return fmt.Errorf("bench: sim clock required")
		}
		clk.Advance(370 * 24 * time.Hour) // Listing 1 TTL is 1Y: all expired
		rw := rw
		if err := sys.ApplyTuning(core.Tuning{RightsWorkers: &rw}); err != nil {
			return fmt.Errorf("bench: SC3 sweep: %w", err)
		}
		start := time.Now()
		deleted, err := sys.Rights().SweepExpired()
		if err != nil {
			return fmt.Errorf("bench: SC3 sweep: %w", err)
		}
		elapsed := time.Since(start)
		if len(deleted) != len(pdids) {
			return fmt.Errorf("bench: SC3 sweep deleted %d, want %d", len(deleted), len(pdids))
		}
		row := SC3Row{
			Config: fmt.Sprintf("sweep workers=%d", rw), Mode: "sweep",
			Cache: true, Workers: rw, Ops: len(deleted),
			WallUS:    elapsed.Microseconds(),
			OpsPerSec: float64(len(deleted)) / elapsed.Seconds(),
			Speedup:   1, CacheHitRate: cacheHitRate(sys),
		}
		if rw == 1 {
			sweepBase = row.OpsPerSec
		} else if sweepBase > 0 {
			row.Speedup = row.OpsPerSec / sweepBase
			report.Summary.SweepSpeedup = row.Speedup
		}
		addRow(row)
	}

	rows := make([][]string, 0, len(report.Rows))
	for _, r := range report.Rows {
		rows = append(rows, []string{
			r.Config, r.Mode, fmt.Sprintf("%t", r.Cache), strconv.Itoa(r.Workers),
			strconv.Itoa(r.Ops), strconv.FormatInt(r.WallUS, 10),
			fmt.Sprintf("%.0f", r.OpsPerSec), fmt.Sprintf("%.2f", r.CacheHitRate),
			fmt.Sprintf("%.2fx", r.Speedup),
		})
	}
	table(w, []string{"config", "mode", "cache", "workers", "ops", "wall us", "ops/s", "hit rate", "speedup"}, rows)
	fmt.Fprintln(w, "  expectation: >=2x membrane-read throughput with the cache on (hit rate ~1 after insert")
	fmt.Fprintln(w, "  write-through), and access/sweep wall time scaling with rights-engine workers")
	return writeJSON(p, "SC3", &report)
}

// cacheHitRate reads the machine's membrane-cache hit fraction.
func cacheHitRate(sys *core.System) float64 {
	st := sys.Stats().DBFS
	if st.CacheHits+st.CacheMisses == 0 {
		return 0
	}
	return float64(st.CacheHits) / float64(st.CacheHits+st.CacheMisses)
}

// --- SC4: admission control under an offered-load sweep ---

// SC4Row is one (configuration, offered load) measurement in the SC4
// sweep, serialized into BENCH_SC4.json for the CI regression gate.
type SC4Row struct {
	Config      string  `json:"config"`
	Controlled  bool    `json:"controlled"`
	RateLimited bool    `json:"rate_limited,omitempty"`
	OfferedMult float64 `json:"offered_mult"`
	// OfferedPerSec is the open-loop arrival rate; Offered the arrival
	// count over the window.
	OfferedPerSec float64 `json:"offered_per_sec"`
	Offered       int     `json:"offered"`
	Rejected      int     `json:"rejected"`
	RejectRate    float64 `json:"reject_rate"`
	// CompletedWithinSLO counts admitted invocations that finished inside
	// the latency SLO; GoodputPerSec is that count over the offered
	// window, and GoodputVsCapacity normalizes it by the closed-loop
	// capacity (the pre-saturation goodput).
	CompletedWithinSLO int     `json:"completed_within_slo"`
	GoodputPerSec      float64 `json:"goodput_per_sec"`
	GoodputVsCapacity  float64 `json:"goodput_vs_capacity"`
	P50AdmittedUS      int64   `json:"p50_admitted_us"`
	P99AdmittedUS      int64   `json:"p99_admitted_us"`
	PeakQueueDepth     int     `json:"peak_queue_depth"`
	WallUS             int64   `json:"wall_us"`
}

// SC4Report is the BENCH_SC4.json schema.
type SC4Report struct {
	Experiment string `json:"experiment"`
	Schema     int    `json:"schema"`
	// Comment carries provenance notes (the checked-in baseline explains
	// that its summary is a conservative cross-machine floor).
	Comment    string `json:"comment,omitempty"`
	Clients    int    `json:"clients"`
	Subjects   int    `json:"subjects"`
	QueueBound int    `json:"queue_bound"`
	// CapacityPerSec is the closed-loop (pre-saturation) goodput the
	// open-loop rows are normalized against; SLOUS the latency SLO.
	CapacityPerSec float64  `json:"capacity_per_sec"`
	SLOUS          int64    `json:"slo_us"`
	Rows           []SC4Row `json:"rows"`
	Summary        struct {
		CapacityPerSec float64 `json:"capacity_per_sec"`
		// ControlledGoodputRatio is the gated headline: the fraction of
		// pre-saturation goodput the admission-controlled machine
		// sustains at 2x-saturation offered load.
		ControlledGoodputRatio   float64 `json:"controlled_goodput_ratio"`
		UncontrolledGoodputRatio float64 `json:"uncontrolled_goodput_ratio"`
		ControlledRejectRate     float64 `json:"controlled_reject_rate"`
		ControlledP99US          int64   `json:"controlled_p99_us"`
		UncontrolledP99US        int64   `json:"uncontrolled_p99_us"`
	} `json:"summary"`
}

// sc4Run aggregates one open-loop run.
type sc4Run struct {
	offered   int
	rejected  int
	withinSLO int
	p50, p99  time.Duration
	peakDepth int
	wall      time.Duration
}

// sc4OpenLoop offers single-record scoring invokes at a fixed arrival
// rate for the window, one goroutine per arrival (an open-loop client
// population: arrivals do not slow down when the machine backs up — the
// regime where an uncontrolled queue grows without bound). Every arrival
// ends as exactly one of: completed (latency recorded), rejected
// (admission), or an error that aborts the experiment. The run's wall
// time spans arrival start to last completion — an uncontrolled backlog
// shows up as drain time.
func sc4OpenLoop(sys *core.System, pdids []string, rate float64, window, slo time.Duration) (sc4Run, error) {
	n := int(rate * window.Seconds())
	interarrival := time.Duration(float64(time.Second) / rate)
	lats := make([]time.Duration, n) // -1 = rejected
	errs := make([]error, n)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		if d := time.Until(start.Add(time.Duration(i) * interarrival)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			_, err := sys.PS().Invoke(ps.InvokeRequest{
				Processing: "purpose1", PDRef: pdids[i%len(pdids)],
			})
			switch {
			case err == nil:
				lats[i] = time.Since(t0)
			case errors.Is(err, admission.ErrOverloaded):
				lats[i] = -1
			default:
				errs[i] = err
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return sc4Run{}, err
		}
	}
	run := sc4Run{offered: n, wall: wall}
	var admitted []time.Duration
	for _, lat := range lats {
		if lat < 0 {
			run.rejected++
			continue
		}
		admitted = append(admitted, lat)
		if lat <= slo {
			run.withinSLO++
		}
	}
	if len(admitted) > 0 {
		sort.Slice(admitted, func(i, j int) bool { return admitted[i] < admitted[j] })
		run.p50 = admitted[len(admitted)/2]
		run.p99 = admitted[(len(admitted)-1)*99/100]
	}
	run.peakDepth = sys.PS().Stats().Admission.PeakDepth
	return run, nil
}

// runSC4 measures this PR's admission control: an offered-load sweep past
// saturation. The machine's bottleneck is real and serialized — the PD
// disk sleeps its per-block costs and the machine runs one filesystem
// instance, so every single-record invoke pays its record-data inode walk
// and device reads behind that instance's lock (membranes are served by
// the PR-3 cache, exactly as in production; the data path cannot be),
// which is the resource an unbounded queue piles onto.
// Phase one measures closed-loop capacity (the pre-saturation goodput);
// phase two offers load at multiples of that capacity through three
// configurations: no admission control (the unbounded-queue baseline),
// the bounded admission queue, and the queue plus a per-purpose token
// bucket at capacity. Goodput counts completions within a latency SLO
// derived from the queue bound, so unbounded queueing shows up as what it
// is: arrivals that complete, eventually, uselessly late.
func runSC4(w io.Writer, p Params) error {
	n := p.subjects(32, 16)
	closedOps := p.ops(150, 60)
	window := 2500 * time.Millisecond
	if p.Small {
		window = 1200 * time.Millisecond
	}
	// The admission queue bound equals the closed-loop client count, so
	// the controlled machine never holds more in flight than the
	// configuration its capacity was measured with — admitted latency
	// stays at pre-saturation levels by construction.
	const clients = 8
	const queueBound = clients
	lat := blockdev.LatencyModel{
		ReadCost:  20 * time.Microsecond,
		WriteCost: 30 * time.Microsecond,
		SyncCost:  60 * time.Microsecond,
		Sleep:     true,
	}

	// boot assembles one machine: wall clock (token buckets refill in
	// real time), slept PD device (single-record data reads serialize
	// behind the one filesystem instance — the genuine bottleneck the
	// queue piles onto), n seeded subjects, the scoring processing
	// registered.
	boot := func(maxPending int) (*core.System, []string, error) {
		opts := bootOpts(n)
		opts.Clock = simclock.Real{}
		opts.PDLatency = lat
		opts.Workers = clients
		opts.AdmissionQueue = maxPending
		sys, err := core.Boot(opts)
		if err != nil {
			return nil, nil, err
		}
		if err := sys.DeclareTypesDSL(listing1DSL, aliasOpts()); err != nil {
			return nil, nil, err
		}
		rng := xrand.New(p.Seed + 41)
		subjects := workload.SubjectIDs(n)
		tok := sys.DEDToken()
		pdids := make([]string, 0, n)
		for _, subject := range subjects {
			pdid, err := sys.DBFS().Insert(tok, "user", subject, workload.UserRecord(rng, subject), nil)
			if err != nil {
				return nil, nil, err
			}
			pdids = append(pdids, pdid)
		}
		if err := sys.PS().Register(ScoreDecl(), ScoreImpl(), false); err != nil {
			return nil, nil, err
		}
		return sys, pdids, nil
	}

	// Phase one: closed-loop capacity — a fixed client population issuing
	// back-to-back invokes, the classical pre-saturation goodput — and
	// the pre-saturation latency distribution the SLO derives from.
	capSys, capPDIDs, err := boot(0)
	if err != nil {
		return fmt.Errorf("bench: SC4 capacity boot: %w", err)
	}
	var (
		wg      sync.WaitGroup
		nextOp  atomic.Int64
		capErrs = make(chan error, clients)
	)
	closedLats := make([]time.Duration, closedOps)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				i := int(nextOp.Add(1)) - 1
				if i >= closedOps {
					return
				}
				t0 := time.Now()
				if _, err := capSys.PS().Invoke(ps.InvokeRequest{
					Processing: "purpose1", PDRef: capPDIDs[i%len(capPDIDs)],
				}); err != nil {
					capErrs <- err
					return
				}
				closedLats[i] = time.Since(t0)
			}
		}(c)
	}
	wg.Wait()
	close(capErrs)
	for err := range capErrs {
		return fmt.Errorf("bench: SC4 capacity: %w", err)
	}
	capacity := float64(closedOps) / time.Since(start).Seconds()
	// The SLO: three pre-saturation p99s plus fixed scheduler headroom. A
	// controlled machine (in-flight bounded at the measured concurrency)
	// meets it structurally; an unbounded backlog cannot.
	sort.Slice(closedLats, func(i, j int) bool { return closedLats[i] < closedLats[j] })
	closedP99 := closedLats[(len(closedLats)-1)*99/100]
	slo := 3*closedP99 + 20*time.Millisecond

	report := SC4Report{
		Experiment: "SC4", Schema: 1, Clients: clients, Subjects: n,
		QueueBound: queueBound, CapacityPerSec: capacity, SLOUS: slo.Microseconds(),
	}
	report.Summary.CapacityPerSec = capacity

	cfgs := []struct {
		name        string
		maxPending  int
		rateLimited bool
		mult        float64
	}{
		{"admission 0.5x", queueBound, false, 0.5},
		{"uncontrolled 2x", 0, false, 2.0},
		{"admission 2x", queueBound, false, 2.0},
		{"admission+rate 2x", queueBound, true, 2.0},
	}
	rows := make([][]string, 0, len(cfgs))
	for _, c := range cfgs {
		sys, pdids, err := boot(c.maxPending)
		if err != nil {
			return fmt.Errorf("bench: SC4 %s boot: %w", c.name, err)
		}
		if c.rateLimited {
			if err := sys.ApplyTuning(core.Tuning{RateLimits: []core.RateLimit{
				{Purpose: "purpose1", RatePerSec: capacity, Burst: queueBound},
			}}); err != nil {
				return fmt.Errorf("bench: SC4 %s: %w", c.name, err)
			}
		}
		rate := capacity * c.mult
		run, err := sc4OpenLoop(sys, pdids, rate, window, slo)
		if err != nil {
			return fmt.Errorf("bench: SC4 %s: %w", c.name, err)
		}
		// Goodput over the full wall (arrivals + backlog drain): an
		// uncontrolled machine pays its queue twice, as blown SLOs and
		// as drain time.
		goodput := float64(run.withinSLO) / run.wall.Seconds()
		row := SC4Row{
			Config: c.name, Controlled: c.maxPending > 0, RateLimited: c.rateLimited,
			OfferedMult: c.mult, OfferedPerSec: rate, Offered: run.offered,
			Rejected: run.rejected, RejectRate: float64(run.rejected) / float64(run.offered),
			CompletedWithinSLO: run.withinSLO,
			GoodputPerSec:      goodput,
			GoodputVsCapacity:  goodput / capacity,
			P50AdmittedUS:      run.p50.Microseconds(),
			P99AdmittedUS:      run.p99.Microseconds(),
			PeakQueueDepth:     run.peakDepth,
			WallUS:             run.wall.Microseconds(),
		}
		report.Rows = append(report.Rows, row)
		switch c.name {
		case "admission 2x":
			report.Summary.ControlledGoodputRatio = row.GoodputVsCapacity
			report.Summary.ControlledRejectRate = row.RejectRate
			report.Summary.ControlledP99US = row.P99AdmittedUS
		case "uncontrolled 2x":
			report.Summary.UncontrolledGoodputRatio = row.GoodputVsCapacity
			report.Summary.UncontrolledP99US = row.P99AdmittedUS
		}
		rows = append(rows, []string{
			row.Config, fmt.Sprintf("%.1fx", row.OfferedMult), fmt.Sprintf("%.0f", row.OfferedPerSec),
			strconv.Itoa(row.Offered), strconv.Itoa(row.Rejected),
			fmt.Sprintf("%.0f%%", row.RejectRate*100),
			fmt.Sprintf("%.0f", row.GoodputPerSec), fmt.Sprintf("%.2f", row.GoodputVsCapacity),
			strconv.FormatInt(row.P50AdmittedUS, 10), strconv.FormatInt(row.P99AdmittedUS, 10),
			strconv.Itoa(row.PeakQueueDepth),
		})
	}

	fmt.Fprintf(w, "  capacity (closed loop, %d clients): %.0f invokes/s; SLO %v; queue bound %d\n",
		clients, capacity, slo, queueBound)
	table(w, []string{"config", "offered", "offered/s", "arrivals", "rejected", "rej rate",
		"goodput/s", "vs capacity", "p50 us", "p99 us", "peak depth"}, rows)
	fmt.Fprintln(w, "  expectation: admission holds >=90% of pre-saturation goodput at 2x offered load with a")
	fmt.Fprintln(w, "  bounded p99; the uncontrolled machine queues without bound — its p99 explodes and its")
	fmt.Fprintln(w, "  within-SLO goodput collapses, even though every arrival eventually completes")
	return writeJSON(p, "SC4", &report)
}

// --- SC5: actor-model inode core + shared block buffer cache ---

// SC5Row is one configuration's measurement in the SC5 comparison,
// serialized into BENCH_SC5.json for the CI regression gate.
type SC5Row struct {
	Config      string  `json:"config"`
	Mode        string  `json:"mode"` // "contend" or "reread"
	Workers     int     `json:"workers"`
	Ops         int     `json:"ops"`
	WallUS      int64   `json:"wall_us"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	DeviceReads uint64  `json:"device_reads"`
	CacheHits   uint64  `json:"cache_hits"`
	Writebacks  uint64  `json:"writebacks"`
}

// SC5Report is the BENCH_SC5.json schema.
type SC5Report struct {
	Experiment string `json:"experiment"`
	Schema     int    `json:"schema"`
	// Comment carries provenance notes (the checked-in baseline explains
	// that its summary is a conservative cross-machine floor).
	Comment string   `json:"comment,omitempty"`
	Rows    []SC5Row `json:"rows"`
	Summary struct {
		BaselineOpsPerSec  float64 `json:"baseline_ops_per_sec"`
		ActorOpsPerSec     float64 `json:"actor_ops_per_sec"`
		ContentionSpeedup  float64 `json:"contention_speedup"`
		NoCacheDeviceReads uint64  `json:"nocache_device_reads"`
		CacheDeviceReads   uint64  `json:"cache_device_reads"`
		ReadAbsorption     float64 `json:"read_absorption"`
	} `json:"summary"`
}

// runSC5 measures this PR's storage-core refactor inside ONE filesystem
// instance — the contention PR-2's per-shard instances cannot remove. Phase
// one (contend) runs 8 writers, each doing read-modify-write cycles on its
// own inode of the same FS, over a disk that sleeps its read cost: the
// pre-actor baseline (one big FS lock, no block cache) serializes every
// staged device read behind that lock, while the actor core lets distinct
// inodes proceed in parallel and the buffer cache absorbs the re-reads.
// Phase two (reread) isolates the cache: repeated full reads of one file,
// counting raw device reads with the cache on vs off.
func runSC5(w io.Writer, p Params) error {
	const workers = 8
	opsPerWorker := p.ops(200, 40)
	readCost := 30 * time.Microsecond

	contend := func(config string, serial bool, cacheBlocks int) (SC5Row, error) {
		mem, err := blockdev.NewMem(4096, blockdev.LatencyModel{ReadCost: readCost, Sleep: true})
		if err != nil {
			return SC5Row{}, err
		}
		fs, err := inode.Format(mem, inode.Options{
			NInodes:       64,
			JournalBlocks: 256,
			Clock:         simclock.NewSim(simclock.Epoch),
			CacheBlocks:   cacheBlocks,
			SerialOps:     serial,
		})
		if err != nil {
			return SC5Row{}, err
		}
		inos := make([]inode.Ino, workers)
		block := make([]byte, blockdev.BlockSize)
		for i := range inos {
			if inos[i], err = fs.AllocInode(inode.ModeFile, "sc5"); err != nil {
				return SC5Row{}, err
			}
			// Materialize the block so every timed write is a partial
			// overwrite that must stage a device read.
			if _, err := fs.WriteAt(inos[i], 0, block); err != nil {
				return SC5Row{}, err
			}
		}
		var wg sync.WaitGroup
		workErrs := make(chan error, workers)
		start := time.Now()
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				buf := make([]byte, 64)
				ino := inos[wk]
				for i := 0; i < opsPerWorker; i++ {
					off := uint64((i % 8) * 64)
					if _, err := fs.ReadAt(ino, off, buf); err != nil {
						workErrs <- err
						return
					}
					buf[0]++
					if _, err := fs.WriteAt(ino, off, buf); err != nil {
						workErrs <- err
						return
					}
				}
			}(wk)
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(workErrs)
		for err := range workErrs {
			return SC5Row{}, fmt.Errorf("bench: SC5 %s: %w", config, err)
		}
		total := workers * opsPerWorker
		cs := fs.CacheStats()
		return SC5Row{
			Config:      config,
			Mode:        "contend",
			Workers:     workers,
			Ops:         total,
			WallUS:      elapsed.Microseconds(),
			OpsPerSec:   float64(total) / elapsed.Seconds(),
			DeviceReads: mem.Stats().Reads,
			CacheHits:   cs.CacheHits,
			Writebacks:  cs.Writebacks,
		}, nil
	}

	const (
		rereadBlocks = 16
		rereadPasses = 32
	)
	reread := func(config string, cacheBlocks int) (SC5Row, error) {
		mem := blockdev.MustMem(4096)
		fs, err := inode.Format(mem, inode.Options{
			NInodes:       64,
			JournalBlocks: 256,
			Clock:         simclock.NewSim(simclock.Epoch),
			CacheBlocks:   cacheBlocks,
		})
		if err != nil {
			return SC5Row{}, err
		}
		ino, err := fs.AllocInode(inode.ModeFile, "sc5-hot")
		if err != nil {
			return SC5Row{}, err
		}
		data := make([]byte, rereadBlocks*blockdev.BlockSize)
		if _, err := fs.WriteAt(ino, 0, data); err != nil {
			return SC5Row{}, err
		}
		// Prime once so both arms start from a read steady state, then
		// count raw device reads across the hot passes alone.
		if _, err := fs.ReadAt(ino, 0, data); err != nil {
			return SC5Row{}, err
		}
		base := mem.Stats().Reads
		start := time.Now()
		for i := 0; i < rereadPasses; i++ {
			if _, err := fs.ReadAt(ino, 0, data); err != nil {
				return SC5Row{}, err
			}
		}
		elapsed := time.Since(start)
		cs := fs.CacheStats()
		return SC5Row{
			Config:      config,
			Mode:        "reread",
			Workers:     1,
			Ops:         rereadPasses,
			WallUS:      elapsed.Microseconds(),
			OpsPerSec:   float64(rereadPasses) / elapsed.Seconds(),
			DeviceReads: mem.Stats().Reads - base,
			CacheHits:   cs.CacheHits,
			Writebacks:  cs.Writebacks,
		}, nil
	}

	report := SC5Report{Experiment: "SC5", Schema: 1}
	baseRow, err := contend("fsmu-baseline serial nocache", true, -1)
	if err != nil {
		return err
	}
	actorRow, err := contend("actors+bcache", false, 0)
	if err != nil {
		return err
	}
	noCacheRead, err := reread("reread nocache", -1)
	if err != nil {
		return err
	}
	cacheRead, err := reread("reread bcache", 0)
	if err != nil {
		return err
	}
	report.Rows = []SC5Row{baseRow, actorRow, noCacheRead, cacheRead}
	report.Summary.BaselineOpsPerSec = baseRow.OpsPerSec
	report.Summary.ActorOpsPerSec = actorRow.OpsPerSec
	if baseRow.OpsPerSec > 0 {
		report.Summary.ContentionSpeedup = actorRow.OpsPerSec / baseRow.OpsPerSec
	}
	report.Summary.NoCacheDeviceReads = noCacheRead.DeviceReads
	report.Summary.CacheDeviceReads = cacheRead.DeviceReads
	absorbed := cacheRead.DeviceReads
	if absorbed == 0 {
		absorbed = 1 // a fully absorbing cache still reports a finite ratio
	}
	report.Summary.ReadAbsorption = float64(noCacheRead.DeviceReads) / float64(absorbed)

	rows := make([][]string, 0, len(report.Rows))
	for _, r := range report.Rows {
		rows = append(rows, []string{
			r.Config, r.Mode, strconv.Itoa(r.Workers), strconv.Itoa(r.Ops),
			strconv.FormatInt(r.WallUS, 10), fmt.Sprintf("%.0f", r.OpsPerSec),
			strconv.FormatUint(r.DeviceReads, 10), strconv.FormatUint(r.CacheHits, 10),
			strconv.FormatUint(r.Writebacks, 10),
		})
	}
	table(w, []string{"config", "mode", "workers", "ops", "wall us", "ops/s", "dev reads", "hits", "writebacks"}, rows)
	fmt.Fprintf(w, "  contention speedup (actors+bcache vs serial fs.mu baseline, %d writers, one FS): %.2fx\n",
		workers, report.Summary.ContentionSpeedup)
	fmt.Fprintf(w, "  hot re-read absorption (device reads nocache/bcache): %d/%d = %.1fx\n",
		report.Summary.NoCacheDeviceReads, report.Summary.CacheDeviceReads, report.Summary.ReadAbsorption)
	fmt.Fprintln(w, "  expectation: >=2x intra-shard throughput at 8 writers and >=10x fewer device reads on")
	fmt.Fprintln(w, "  the hot re-read — contention the per-shard instances of PR-2 cannot remove")
	return writeJSON(p, "SC5", &report)
}

// --- SC6: self-tuning control plane: step response to a load change ---

// SC6Row is one controller's outcome in one load phase, serialized into
// BENCH_SC6.json for the CI regression gate.
type SC6Row struct {
	Controller string  `json:"controller"`
	Mode       string  `json:"mode"`
	Phase      string  `json:"phase"`
	Load       float64 `json:"load"`
	// TicksToConverge is the phase-relative tick at which the controller
	// first reported convergence (-1 = never within the budget).
	TicksToConverge int     `json:"ticks_to_converge"`
	KnobFinal       float64 `json:"knob_final"`
	// KnobOpt / SignalOpt are the hand-tuned static optimum: the knob a
	// grid search picks for this load, and the signal it achieves.
	KnobOpt     float64 `json:"knob_opt"`
	SignalFinal float64 `json:"signal_final"`
	SignalOpt   float64 `json:"signal_opt"`
	Target      float64 `json:"target"`
	// MarginVsOpt is |signal_final - signal_opt| / target: how far the
	// converged operating point sits from the hand-tuned one.
	MarginVsOpt float64 `json:"margin_vs_opt"`
	// PostAmplitude is the knob's peak-to-peak swing over the
	// post-convergence observation window (0 = perfectly still).
	PostAmplitude float64 `json:"post_amplitude"`
}

// SC6Report is the BENCH_SC6.json schema.
type SC6Report struct {
	Experiment string   `json:"experiment"`
	Schema     int      `json:"schema"`
	Comment    string   `json:"comment,omitempty"`
	Rows       []SC6Row `json:"rows"`
	Summary    struct {
		// ControllersConverged counts controllers that converged in every
		// phase (4.0 = all).
		ControllersConverged float64 `json:"controllers_converged"`
		// WithinBand is 1.0 when every converged operating point is within
		// the controller's band of both its target and the grid-searched
		// static optimum.
		WithinBand float64 `json:"within_band"`
		// AmplitudeBounded is 1.0 when no controller's post-convergence
		// peak-to-peak knob swing exceeds one step.
		AmplitudeBounded float64 `json:"amplitude_bounded"`
		WorstMargin      float64 `json:"worst_margin"`
		TotalTicks       int     `json:"total_ticks"`
	} `json:"summary"`
}

// sc6Plant is a closed-form stand-in for one knob's observed signal: the
// same shape as the counters core wires (group occupancy, p99/SLO ratio,
// expiries per pass, cache hit rate) — monotone non-decreasing in the knob,
// scaled by the offered load — but with no scheduler or allocator noise, so
// the experiment isolates the controller dynamics and CI can gate
// convergence itself deterministically.
type sc6Plant struct {
	knob float64
	load float64
	sig  func(knob, load float64) float64
}

// runSC6 is the control-plane step-response experiment: four controllers
// mirroring the production setpoints (core.Options.Control) run on the sim
// clock against their plants. Phase one converges at load 1x; then the
// offered load steps to 2x and back down to 0.5x. For every phase the
// converged operating point is compared against a hand-tuned static
// optimum (grid search over the knob range at that load), and a
// post-convergence window checks the knob holds still — bounded
// oscillation by construction, asserted by measurement.
func runSC6(w io.Writer, p Params) error {
	sim := simclock.NewSim(simclock.Epoch)
	interval := time.Second

	// Plants and controllers, mirroring internal/core/control.go's modes,
	// targets, bands and steps.
	specs := []struct {
		name                                  string
		mode                                  control.Mode
		sig                                   func(knob, load float64) float64
		target, band, min, max, initial, step float64
	}{
		// Group-commit occupancy: coalescing grows with the window and the
		// arrival rate, saturating at the batch bound.
		{"commit-window", control.AIMD,
			func(k, l float64) float64 { return math.Min(1+l*0.5*k, 16) },
			4.0, 0.25, 0, 20, 0, 0.3},
		// Admitted-latency p99 over the SLO: queueing delay grows with the
		// admission bound and the offered load.
		{"admission-queue", control.AIMD,
			func(k, l float64) float64 { return l * k / 64 },
			1.0, 0.2, 1, 4096, 64, 4},
		// Expiries reclaimed per sweep pass: the expiry rate times the
		// pass gap.
		{"sweep-interval", control.HillClimb,
			func(k, l float64) float64 { return l * 0.25 * k },
			8.0, 0.5, 1, 900, 60, 5},
		// Membrane-cache hit rate: capacity against a working set that
		// scales with load.
		{"membrane-cache", control.HillClimb,
			func(k, l float64) float64 { return k / (k + l*256) },
			0.9, 0.05, 64, 65536, 1024, 256},
	}

	plants := make([]*sc6Plant, len(specs))
	ctrls := make([]*control.Controller, len(specs))
	for i, sp := range specs {
		pl := &sc6Plant{knob: sp.initial, load: 1, sig: sp.sig}
		plants[i] = pl
		c, err := control.New(control.Config{
			Name: sp.name, Mode: sp.mode,
			Target: sp.target, Band: sp.band,
			Min: sp.min, Max: sp.max, Initial: sp.initial, Step: sp.step,
			Read:  func() float64 { return pl.sig(pl.knob, pl.load) },
			Apply: func(v float64) error { pl.knob = v; return nil },
		})
		if err != nil {
			return fmt.Errorf("bench: SC6 %s: %w", sp.name, err)
		}
		ctrls[i] = c
	}
	group := control.NewGroup(sim, interval, ctrls...)

	// optimum grid-searches the best static knob for a load.
	optimum := func(i int, load float64) (knob, sig float64) {
		sp := specs[i]
		best, bestSig := sp.min, sp.sig(sp.min, load)
		const points = 4000
		for g := 0; g <= points; g++ {
			k := sp.min + (sp.max-sp.min)*float64(g)/points
			s := sp.sig(k, load)
			if math.Abs(s-sp.target) < math.Abs(bestSig-sp.target) {
				best, bestSig = k, s
			}
		}
		return best, bestSig
	}

	report := SC6Report{Experiment: "SC6", Schema: 1}
	report.Summary.WithinBand = 1
	report.Summary.AmplitudeBounded = 1
	const maxTicks, postTicks = 400, 25
	phases := []struct {
		name string
		load float64
	}{{"warm", 1}, {"step-up", 2}, {"step-down", 0.5}}
	convergedEverywhere := make([]bool, len(specs))
	for i := range convergedEverywhere {
		convergedEverywhere[i] = true
	}
	for _, ph := range phases {
		for _, pl := range plants {
			pl.load = ph.load
		}
		convAt := make([]int, len(ctrls))
		for i := range convAt {
			convAt[i] = -1
		}
		for tick := 1; tick <= maxTicks; tick++ {
			group.Tick()
			sim.Advance(interval)
			report.Summary.TotalTicks++
			all := true
			for i, c := range ctrls {
				if c.State().Converged {
					if convAt[i] == -1 {
						convAt[i] = tick
					}
				} else {
					all = false
				}
			}
			if all {
				break
			}
		}
		// Post-convergence window: the knob must hold still under constant
		// load (a neutral plant reads in band, so any move is oscillation).
		minK := make([]float64, len(ctrls))
		maxK := make([]float64, len(ctrls))
		for i, c := range ctrls {
			minK[i], maxK[i] = c.Knob(), c.Knob()
		}
		for t := 0; t < postTicks; t++ {
			group.Tick()
			sim.Advance(interval)
			report.Summary.TotalTicks++
			for i, c := range ctrls {
				k := c.Knob()
				minK[i] = math.Min(minK[i], k)
				maxK[i] = math.Max(maxK[i], k)
			}
		}
		for i := range ctrls {
			sp := specs[i]
			kOpt, sOpt := optimum(i, ph.load)
			sFinal := plants[i].sig(plants[i].knob, ph.load)
			margin := math.Abs(sFinal-sOpt) / sp.target
			amp := maxK[i] - minK[i]
			row := SC6Row{
				Controller:      sp.name,
				Mode:            sp.mode.String(),
				Phase:           ph.name,
				Load:            ph.load,
				TicksToConverge: convAt[i],
				KnobFinal:       plants[i].knob,
				KnobOpt:         kOpt,
				SignalFinal:     sFinal,
				SignalOpt:       sOpt,
				Target:          sp.target,
				MarginVsOpt:     margin,
				PostAmplitude:   amp,
			}
			report.Rows = append(report.Rows, row)
			if convAt[i] == -1 {
				convergedEverywhere[i] = false
			}
			if margin > sp.band || math.Abs(sFinal-sp.target) > sp.band*sp.target {
				report.Summary.WithinBand = 0
			}
			if amp > sp.step {
				report.Summary.AmplitudeBounded = 0
			}
			report.Summary.WorstMargin = math.Max(report.Summary.WorstMargin, margin)
		}
	}
	for _, ok := range convergedEverywhere {
		if ok {
			report.Summary.ControllersConverged++
		}
	}

	rows := make([][]string, 0, len(report.Rows))
	for _, r := range report.Rows {
		rows = append(rows, []string{
			r.Controller, r.Mode, r.Phase, fmt.Sprintf("%.1fx", r.Load),
			strconv.Itoa(r.TicksToConverge), fmt.Sprintf("%.2f", r.KnobFinal),
			fmt.Sprintf("%.2f", r.KnobOpt), fmt.Sprintf("%.3f", r.SignalFinal),
			fmt.Sprintf("%.3f", r.SignalOpt), fmt.Sprintf("%.3f", r.Target),
			fmt.Sprintf("%.3f", r.MarginVsOpt), fmt.Sprintf("%.2f", r.PostAmplitude),
		})
	}
	table(w, []string{"controller", "mode", "phase", "load", "ticks", "knob", "knob*", "signal", "signal*", "target", "margin", "post p2p"}, rows)
	fmt.Fprintf(w, "  converged controllers (all phases): %.0f/4; worst margin vs hand-tuned optimum: %.3f\n",
		report.Summary.ControllersConverged, report.Summary.WorstMargin)
	fmt.Fprintln(w, "  expectation: every controller re-converges after each load step to within its band of the")
	fmt.Fprintln(w, "  grid-searched static optimum, and holds perfectly still afterwards (no oscillation)")
	return writeJSON(p, "SC6", &report)
}

// --- SC7: content-addressable compressed cold tier ---

// SC7Row is one phase of the cold-tier experiment, serialized into
// BENCH_SC7.json. Every column is a deterministic count (blocks allocated,
// device ops) — never wall-clock — so the JSON is byte-identical across
// runs of the same seed and the CI gate can compare it exactly.
type SC7Row struct {
	Phase        string `json:"phase"`
	Config       string `json:"config"`
	Records      int    `json:"records"`
	UsedBlocks   uint64 `json:"used_blocks"`
	DeviceReads  uint64 `json:"device_reads"`
	DeviceWrites uint64 `json:"device_writes"`
}

// SC7Report is the BENCH_SC7.json schema.
type SC7Report struct {
	Experiment string   `json:"experiment"`
	Schema     int      `json:"schema"`
	Comment    string   `json:"comment,omitempty"`
	Rows       []SC7Row `json:"rows"`
	Summary    struct {
		// Records is the demoted population; Hot/ColdRecordBlocks the
		// device blocks those records occupy before and after demotion
		// (metadata base subtracted), FootprintRatio their quotient.
		Records          int     `json:"records"`
		HotRecordBlocks  uint64  `json:"hot_record_blocks"`
		ColdRecordBlocks uint64  `json:"cold_record_blocks"`
		FootprintRatio   float64 `json:"footprint_ratio"`
		// ColdBytesSaved is the store's saved-bytes gauge after demotion
		// (raw entry bytes minus encoded archive bytes).
		ColdBytesSaved int64 `json:"cold_bytes_saved"`
		// HotPathOps* count device ops over an identical all-hot read
		// workload with the tier disabled vs enabled; the ratio is the
		// tier's hot-path tax and must stay within the gate band.
		HotPathOpsBaseline uint64  `json:"hot_path_ops_baseline"`
		HotPathOpsColdOn   uint64  `json:"hot_path_ops_cold_on"`
		HotPathOpsRatio    float64 `json:"hot_path_ops_ratio"`
		// PromoteOpsPerRecord is the device-op cost of one transparent
		// promotion (first read of an archived record) — the promotion
		// latency ceiling, in deterministic units.
		PromotedRecords     int     `json:"promoted_records"`
		PromoteOpsPerRecord float64 `json:"promote_ops_per_record"`
		// Re-demotion of promoted-but-unchanged records must dedup onto
		// the retained chunks: every part a hit, no new archive bytes.
		RedemotionDedupHits uint64 `json:"redemotion_dedup_hits"`
		RedemotionNewBytes  int64  `json:"redemotion_new_bytes"`
		// Shred-safety: after erasing one record, its archived ciphertext
		// and its membrane-snapshot entry must not decode, and the raw
		// device must hold zero copies of the plaintext name.
		ArchiveUndecodable   bool `json:"archive_undecodable"`
		SnapshotUndecodable  bool `json:"snapshot_undecodable"`
		PlaintextResidueHits int  `json:"plaintext_residue_hits"`
	} `json:"summary"`
}

// sc7Rig is a deterministic standalone DBFS: simclock, seeded vault
// entropy (xrand.NewReader via Vault.SetRand), synchronous journal — every
// block write and ciphertext byte is a pure function of the seed.
type sc7Rig struct {
	dev   *blockdev.Mem
	fs    *inode.FS
	store *dbfs.Store
	vault *cryptoshred.Vault
	clock *simclock.Sim
	tok   *lsm.Token
}

func newSC7Rig(seed uint64, coldAfter time.Duration) (*sc7Rig, error) {
	dev := blockdev.MustMem(16384)
	clock := simclock.NewSim(simclock.Epoch)
	// CacheBlocks -1 disables the block cache: the hot-path phase must
	// count real device reads, not cache hits.
	fs, err := inode.Format(dev, inode.Options{NInodes: 8192, JournalBlocks: 256, Clock: clock, CacheBlocks: -1})
	if err != nil {
		return nil, err
	}
	auth, err := cryptoshred.NewAuthority(1024)
	if err != nil {
		return nil, err
	}
	guard := lsm.NewGuard()
	vault := cryptoshred.NewVault(auth.PublicKey())
	vault.SetRand(xrand.NewReader(seed))
	store, err := dbfs.Create([]*inode.FS{fs}, guard, vault, clock)
	if err != nil {
		return nil, err
	}
	store.ConfigureColdTier(coldAfter)
	tok := guard.Mint("ded", lsm.CapDBFS)
	sch := &dbfs.Schema{
		Name: "user",
		Fields: []dbfs.Field{
			{Name: "name", Type: dbfs.TypeString},
			{Name: "pwd", Type: dbfs.TypeString, Sensitive: true},
			{Name: "year_of_birthdate", Type: dbfs.TypeInt},
		},
		Views: []dbfs.View{{Name: "v_ano", Fields: []string{"year_of_birthdate"}}},
		DefaultConsent: map[string]membrane.Grant{
			"purpose3": {Kind: membrane.GrantView, View: "v_ano"},
		},
		DefaultTTL: 365 * 24 * time.Hour,
	}
	if err := store.CreateType(tok, sch); err != nil {
		return nil, err
	}
	return &sc7Rig{dev: dev, fs: fs, store: store, vault: vault, clock: clock, tok: tok}, nil
}

// runSC7 measures the cold tier end to end: footprint reduction from
// demoting an idle population into compressed per-subject archives, the
// (absence of a) hot-path tax while records stay hot, the device-op cost
// of transparent promotion, re-demotion dedup, and the crypto-shredding
// contract over archives and membrane snapshots.
func runSC7(w io.Writer, p Params) error {
	nSubjects := p.subjects(160, 20)
	const recsPerSubject = 3
	const promoteK = 8
	const readPasses = 2
	coldAfter := time.Hour

	report := SC7Report{Experiment: "SC7", Schema: 1}
	totalRecs := nSubjects * recsPerSubject
	report.Summary.Records = totalRecs

	ops := func(dev *blockdev.Mem) uint64 {
		st := dev.Stats()
		return st.Reads + st.Writes
	}
	row := func(phase, config string, records int, r *sc7Rig, base blockdev.Stats) SC7Row {
		st := r.dev.Stats()
		return SC7Row{
			Phase: phase, Config: config, Records: records,
			UsedBlocks:   r.fs.UsedBlocks(),
			DeviceReads:  st.Reads - base.Reads,
			DeviceWrites: st.Writes - base.Writes,
		}
	}

	// Two rigs, identical seed and workload; only the tier flag differs.
	seedInto := func(r *sc7Rig) ([]string, error) {
		rng := xrand.New(p.Seed + 7)
		subjects := workload.SubjectIDs(nSubjects)
		pdids := make([]string, 0, totalRecs)
		for _, subject := range subjects {
			for k := 0; k < recsPerSubject; k++ {
				pdid, err := r.store.Insert(r.tok, "user", subject, workload.UserRecord(rng, subject), nil)
				if err != nil {
					return nil, err
				}
				pdids = append(pdids, pdid)
			}
		}
		return pdids, nil
	}
	readAllHot := func(r *sc7Rig, pdids []string) error {
		for pass := 0; pass < readPasses; pass++ {
			for _, pdid := range pdids {
				if _, err := r.store.GetRecord(r.tok, pdid); err != nil {
					return err
				}
				if _, err := r.store.GetMembrane(r.tok, pdid); err != nil {
					return err
				}
			}
		}
		return nil
	}

	off, err := newSC7Rig(p.Seed, 0)
	if err != nil {
		return err
	}
	on, err := newSC7Rig(p.Seed, coldAfter)
	if err != nil {
		return err
	}
	baseBlocksOn := on.fs.UsedBlocks()
	offPDIDs, err := seedInto(off)
	if err != nil {
		return err
	}
	onPDIDs, err := seedInto(on)
	if err != nil {
		return err
	}
	report.Rows = append(report.Rows, row("insert", "cold-off", totalRecs, off, blockdev.Stats{}))
	report.Rows = append(report.Rows, row("insert", "cold-on", totalRecs, on, blockdev.Stats{}))
	hotBlocks := on.fs.UsedBlocks() - baseBlocksOn

	// Hot-path band: the same all-hot read workload on both rigs; while
	// nothing demotes, the enabled tier's only cost is touch stamping.
	baseOff, baseOn := off.dev.Stats(), on.dev.Stats()
	if err := readAllHot(off, offPDIDs); err != nil {
		return err
	}
	if err := readAllHot(on, onPDIDs); err != nil {
		return err
	}
	rOff := row("read-hot", "cold-off", totalRecs, off, baseOff)
	rOn := row("read-hot", "cold-on", totalRecs, on, baseOn)
	report.Rows = append(report.Rows, rOff, rOn)
	report.Summary.HotPathOpsBaseline = rOff.DeviceReads + rOff.DeviceWrites
	report.Summary.HotPathOpsColdOn = rOn.DeviceReads + rOn.DeviceWrites
	if report.Summary.HotPathOpsBaseline > 0 {
		report.Summary.HotPathOpsRatio = float64(report.Summary.HotPathOpsColdOn) / float64(report.Summary.HotPathOpsBaseline)
	}

	// Demote the whole (now idle) population and measure the footprint.
	on.clock.Advance(2 * coldAfter)
	base := on.dev.Stats()
	ps, err := on.store.RepackCold(on.tok, on.clock.Now())
	if err != nil {
		return err
	}
	if ps.Demoted != totalRecs {
		return fmt.Errorf("bench: SC7: demoted %d of %d records", ps.Demoted, totalRecs)
	}
	report.Rows = append(report.Rows, row("repack", "cold-on", ps.Demoted, on, base))
	coldBlocks := on.fs.UsedBlocks() - baseBlocksOn
	report.Summary.HotRecordBlocks = hotBlocks
	report.Summary.ColdRecordBlocks = coldBlocks
	if coldBlocks > 0 {
		report.Summary.FootprintRatio = float64(hotBlocks) / float64(coldBlocks)
	}
	report.Summary.ColdBytesSaved = on.store.Stats().ColdBytesSaved

	// Transparent promotion: first read of an archived record pays the
	// rematerialization; count its device ops.
	base = on.dev.Stats()
	for _, pdid := range onPDIDs[:promoteK] {
		if _, err := on.store.GetRecord(on.tok, pdid); err != nil {
			return fmt.Errorf("bench: SC7 promote %s: %w", pdid, err)
		}
	}
	rPromote := row("promote", "cold-on", promoteK, on, base)
	report.Rows = append(report.Rows, rPromote)
	report.Summary.PromotedRecords = promoteK
	report.Summary.PromoteOpsPerRecord = float64(ops(on.dev)-base.Reads-base.Writes) / float64(promoteK)

	// Re-demotion of the promoted (unchanged) records: all dedup, no new
	// archive bytes.
	on.clock.Advance(2 * coldAfter)
	base = on.dev.Stats()
	ps2, err := on.store.RepackCold(on.tok, on.clock.Now())
	if err != nil {
		return err
	}
	report.Rows = append(report.Rows, row("re-repack", "cold-on", ps2.Demoted, on, base))
	report.Summary.RedemotionDedupHits = uint64(ps2.DedupHits)
	report.Summary.RedemotionNewBytes = ps2.StoredBytes

	// Shred-safety: snapshot the membranes, erase one record, verify the
	// archive copy and the snapshot entry decode to nothing and the raw
	// device holds no plaintext.
	victim := onPDIDs[0]
	victimRec, err := on.store.GetRecord(on.tok, victim) // promotes the victim
	if err != nil {
		return err
	}
	victimName := victimRec["name"].S
	if _, err := on.store.SnapshotMembranes(on.tok, "sc7-audit"); err != nil {
		return err
	}
	if _, err := on.store.Erase(on.tok, victim); err != nil {
		return err
	}
	parts, err := on.store.ColdRaw(on.tok, victim)
	if err != nil {
		return err
	}
	_, dataErr := on.vault.Open(victim, parts["data"])
	report.Summary.ArchiveUndecodable = errors.Is(dataErr, cryptoshred.ErrKeyDestroyed)
	_, snapErr := on.store.SnapshotMembrane(on.tok, "sc7-audit", victim)
	report.Summary.SnapshotUndecodable = errors.Is(snapErr, cryptoshred.ErrKeyDestroyed)
	report.Summary.PlaintextResidueHits = bytes.Count(on.dev.ReadRaw(), []byte(victimName))

	rows := make([][]string, 0, len(report.Rows))
	for _, r := range report.Rows {
		rows = append(rows, []string{
			r.Phase, r.Config, strconv.Itoa(r.Records),
			strconv.FormatUint(r.UsedBlocks, 10),
			strconv.FormatUint(r.DeviceReads, 10), strconv.FormatUint(r.DeviceWrites, 10),
		})
	}
	table(w, []string{"phase", "config", "records", "used blocks", "dev reads", "dev writes"}, rows)
	fmt.Fprintf(w, "  cold footprint: %d -> %d record blocks = %.2fx reduction; %d archive bytes saved\n",
		report.Summary.HotRecordBlocks, report.Summary.ColdRecordBlocks,
		report.Summary.FootprintRatio, report.Summary.ColdBytesSaved)
	fmt.Fprintf(w, "  hot-path device ops (tier off/on): %d/%d = %.3fx; promotion: %.1f ops/record over %d records\n",
		report.Summary.HotPathOpsBaseline, report.Summary.HotPathOpsColdOn,
		report.Summary.HotPathOpsRatio, report.Summary.PromoteOpsPerRecord, promoteK)
	fmt.Fprintf(w, "  re-demotion: %d dedup hits, %d new archive bytes; shred-safe: archive=%v snapshot=%v residue=%d\n",
		report.Summary.RedemotionDedupHits, report.Summary.RedemotionNewBytes,
		report.Summary.ArchiveUndecodable, report.Summary.SnapshotUndecodable,
		report.Summary.PlaintextResidueHits)
	fmt.Fprintln(w, "  expectation: >=2x footprint reduction, hot-path ratio within band, bounded promotion cost,")
	fmt.Fprintln(w, "  and a shredded record's archived + snapshotted copies decode to nothing")
	return writeJSON(p, "SC7", &report)
}
