// Package bench is the experiment harness: one registered experiment per
// figure/listing/illustration of the paper (DESIGN.md §3), each regenerating
// its artifact as text tables/charts on a writer. cmd/benchfig exposes the
// registry on the command line; bench_test.go wraps the same code paths in
// testing.B benchmarks.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/ded"
	"repro/internal/purpose"
	"repro/internal/typedsl"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Params tunes an experiment run.
type Params struct {
	// Seed drives all randomness.
	Seed uint64
	// Subjects sizes the PD population (0 = experiment default).
	Subjects int
	// Ops sizes operation counts (0 = experiment default).
	Ops int
	// Small switches to the fast configuration used by tests.
	Small bool
	// JSONDir, when set, makes experiments with machine-readable results
	// additionally write them as BENCH_<ID>.json files there (the format
	// the CI bench gate compares against BENCH_baseline.json).
	JSONDir string
}

func (p Params) subjects(def, small int) int {
	if p.Subjects > 0 {
		return p.Subjects
	}
	if p.Small {
		return small
	}
	return def
}

func (p Params) ops(def, small int) int {
	if p.Ops > 0 {
		return p.Ops
	}
	if p.Small {
		return small
	}
	return def
}

// Experiment is one reproducible artifact.
type Experiment struct {
	ID    string
	Title string
	// Paper names the paper artifact this regenerates.
	Paper string
	Run   func(w io.Writer, p Params) error
}

// Registry lists every experiment in DESIGN.md order.
func Registry() []Experiment {
	return []Experiment{
		{ID: "F1L", Title: "Total GDPR penalties per year", Paper: "Figure 1 (left)", Run: runF1L},
		{ID: "F1R", Title: "Top-5 sanctioned sectors", Paper: "Figure 1 (right)", Run: runF1R},
		{ID: "F2V1", Title: "Journal/free-space residue after delete (baseline vs rgpdOS)", Paper: "Figure 2 + §1 claim", Run: runF2V1},
		{ID: "F2V2", Title: "Use-after-free cross-PD read (process- vs data-centric)", Paper: "Figure 2 + Idea 2", Run: runF2V2},
		{ID: "F3", Title: "Active-data membrane enforcement across consent densities", Paper: "Figure 3", Run: runF3},
		{ID: "F4P", Title: "DED pipeline stage breakdown", Paper: "Figure 4", Run: runF4P},
		{ID: "L1", Title: "Type-declaration DSL on the paper's Listing 1", Paper: "Listing 1", Run: runL1},
		{ID: "L23", Title: "Purpose-annotated processing via ps_invoke", Paper: "Listings 2-3", Run: runL23},
		{ID: "IA", Title: "Right of access: structured export + processing log", Paper: "§4 illustration", Run: runIA},
		{ID: "IF", Title: "Right to be forgotten: crypto-erasure with escrow", Paper: "§4 illustration", Run: runIF},
		{ID: "OV1", Title: "End-to-end overhead vs baseline DB and raw map", Paper: "implicit cost of §1", Run: runOV1},
		{ID: "OV2", Title: "Membrane cost attribution across consent densities", Paper: "§2 membrane design", Run: runOV2},
		{ID: "OV3", Title: "Purpose-kernel IPC cost (split vs monolithic)", Paper: "§2 kernel model", Run: runOV3},
		{ID: "OV4", Title: "DBFS vs plain file-based FS at record granularity", Paper: "§2 DBFS", Run: runOV4},
		{ID: "OV5", Title: "Sensitive-field separation cost", Paper: "§2 sensitivity levels", Run: runOV5},
		{ID: "OV6", Title: "TTL sweeper (storage limitation)", Paper: "§2/§4 TTL", Run: runOV6},
		{ID: "SC1", Title: "Subject-sharded DBFS + concurrent DED executor scaling", Paper: "§2 DED model, scaled (north star)", Run: runSC1},
		{ID: "SC2", Title: "WAL group-commit x per-shard FS: concurrent insert throughput", Paper: "§3 DBFS storage stack, scaled (north star)", Run: runSC2},
		{ID: "SC3", Title: "Membrane cache x parallel rights: read-path throughput", Paper: "§3 ded_load_membrane cost, scaled (north star)", Run: runSC3},
		{ID: "SC4", Title: "Admission control: goodput/rejects/p99 past saturation", Paper: "heavy-traffic enforcement, scaled (north star)", Run: runSC4},
		{ID: "SC5", Title: "Actor inode core x block buffer cache: intra-shard contention", Paper: "§3 DBFS storage stack, scaled (north star)", Run: runSC5},
		{ID: "SC6", Title: "Self-tuning control plane: step-response convergence", Paper: "runtime self-tuning, scaled (north star)", Run: runSC6},
		{ID: "SC7", Title: "Content-addressable compressed cold tier: footprint, promotion, shred safety", Paper: "storage limitation at scale (north star)", Run: runSC7},
		{ID: "SC8", Title: "Multi-node subject routing: scaling + cross-node erasure propagation", Paper: "multi-machine controllers (§5), scaled (north star)", Run: runSC8},
		{ID: "SC9", Title: "GDPRBench-style macro workloads: per-class tails + regulator invariants", Paper: "realistic controller traffic, scaled (north star)", Run: runSC9},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment in order.
func RunAll(w io.Writer, p Params) error {
	for _, e := range Registry() {
		if err := RunOne(w, e, p); err != nil {
			return err
		}
	}
	return nil
}

// RunOne executes one experiment with its header.
func RunOne(w io.Writer, e Experiment, p Params) error {
	fmt.Fprintf(w, "\n=== %s — %s (reproduces %s) ===\n", e.ID, e.Title, e.Paper)
	if err := e.Run(w, p); err != nil {
		return fmt.Errorf("bench: %s: %w", e.ID, err)
	}
	return nil
}

// --- shared rig ---

// listing1DSL is the paper's type, with the sensitive extension on pwd.
const listing1DSL = `
type user {
  fields {
    name: string,
    pwd: string sensitive,
    year_of_birthdate: int
  };
  view v_name { name };
  view v_ano { age };
  consent {
    purpose1: all,
    purpose2: none,
    purpose3: ano
  };
  collection {
    web_form: user_form.html,
    third_party: fetch_data.py
  };
  origin: subject;
  age: 1Y;
  sensitivity: hight;
}
`

func aliasOpts() typedsl.CompileOptions {
	return typedsl.CompileOptions{FieldAliases: map[string]string{"age": "year_of_birthdate"}}
}

// bootOpts sizes the machine for n subjects.
func bootOpts(n int) core.Options {
	blocks := uint64(16384)
	inodes := uint64(8192)
	for blocks < uint64(n)*24+4096 {
		blocks *= 2
	}
	for inodes < uint64(n)*8+1024 {
		inodes *= 2
	}
	return core.Options{
		AuthorityBits: 1024, // simulation-grade escrow keys: keygen speed
		PDDiskBlocks:  blocks,
		NPDDiskBlocks: 4096,
		NInodes:       inodes,
		JournalBlocks: 256,
	}
}

// seedSystem boots rgpdOS with the Listing 1 type and n subjects acquired
// through the web form. grantProb is the fraction of subjects consenting to
// purpose3.
func seedSystem(n int, seed uint64, grantProb float64) (*core.System, []string, error) {
	s, err := core.Boot(bootOpts(n))
	if err != nil {
		return nil, nil, err
	}
	if err := s.DeclareTypesDSL(listing1DSL, aliasOpts()); err != nil {
		return nil, nil, err
	}
	form := collect.NewWebFormSource("user_form.html")
	s.RegisterSource("user", form)
	rng := xrand.New(seed)
	subjects := workload.SubjectIDs(n)
	for _, subject := range subjects {
		form.Submit(subject, workload.UserRecord(rng, subject))
	}
	if _, err := s.Acquire("user", "web_form", subjects); err != nil {
		return nil, nil, err
	}
	// Consent density: withdraw purpose3 from the non-consenting tail.
	if grantProb < 1 {
		for _, subject := range subjects {
			if rng.Bool(grantProb) {
				continue
			}
			if err := s.Rights().WithdrawConsent(subject, "purpose3"); err != nil {
				return nil, nil, err
			}
		}
	}
	return s, subjects, nil
}

// computeAgeDecl is Listing 2's purpose.
func computeAgeDecl() *purpose.Decl {
	return &purpose.Decl{
		Name:        "purpose3",
		Description: "Compute the age of the input user",
		Basis:       purpose.BasisConsent,
		Reads:       []string{"user.year_of_birthdate"},
	}
}

// computeAgeImpl is Listing 2's implementation.
func computeAgeImpl() *ded.Func {
	return &ded.Func{
		Name:          "compute_age",
		Purpose:       "purpose3",
		DeclaredReads: []string{"user.year_of_birthdate"},
		Fn: func(c *ded.Ctx) (ded.Output, error) {
			if !c.Has("year_of_birthdate") {
				return ded.Output{NonPD: int64(-1)}, nil
			}
			yob, err := c.Field("year_of_birthdate")
			if err != nil {
				return ded.Output{}, err
			}
			now, err := c.Now()
			if err != nil {
				return ded.Output{}, err
			}
			return ded.Output{NonPD: int64(now.Year()) - yob.I}, nil
		},
	}
}

// scorePause is the simulated per-record processing cost of the scaling
// workload: the time a realistic F_pd spends outside rgpdOS (model scoring,
// an external enrichment call) while the DED waits. It is what the
// concurrent executor overlaps across subjects, exactly like blockdev's
// simulated NVMe costs model device time.
const scorePause = 200 * time.Microsecond

// ScoreDecl is the scaling workload's purpose: full-view scoring consented
// under Listing 1's purpose1. Exported (with ScoreImpl) so the root
// testing.B benchmarks measure the exact workload SC1 reports on.
func ScoreDecl() *purpose.Decl {
	return &purpose.Decl{
		Name:        "purpose1",
		Description: "Score the user profile",
		Basis:       purpose.BasisConsent,
		Reads:       []string{"user.name", "user.year_of_birthdate"},
	}
}

// ScoreImpl hashes the visible fields (a stand-in for feature extraction)
// and pays scorePause of simulated processing latency per record.
func ScoreImpl() *ded.Func {
	return &ded.Func{
		Name:          "score_profile",
		Purpose:       "purpose1",
		DeclaredReads: []string{"user.name", "user.year_of_birthdate"},
		Fn: func(c *ded.Ctx) (ded.Output, error) {
			name, err := c.Field("name")
			if err != nil {
				return ded.Output{}, err
			}
			yob, err := c.Field("year_of_birthdate")
			if err != nil {
				return ded.Output{}, err
			}
			h := uint64(14695981039346656037)
			for _, b := range []byte(name.S) {
				h = (h ^ uint64(b)) * 1099511628211
			}
			h ^= uint64(yob.I)
			time.Sleep(scorePause)
			return ded.Output{NonPD: int64(h % 1000)}, nil
		},
	}
}

// table prints aligned rows.
func table(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(w, "  %-*s", widths[i]+2, c)
		}
		fmt.Fprintln(w)
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		for j := 0; j < widths[i]; j++ {
			sep[i] += "-"
		}
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
}

func us(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1e3)
}

func perOp(total time.Duration, n int) string {
	if n == 0 {
		return "-"
	}
	return us(total / time.Duration(n))
}

// sortedKeys returns map keys in order for deterministic tables.
func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// writeJSON emits one experiment's machine-readable results as
// BENCH_<id>.json under p.JSONDir; with no JSONDir set it is a no-op.
func writeJSON(p Params, id string, v any) error {
	if p.JSONDir == "" {
		return nil
	}
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encode %s results: %w", id, err)
	}
	raw = append(raw, '\n')
	if err := os.MkdirAll(p.JSONDir, 0o755); err != nil {
		return fmt.Errorf("bench: create %s: %w", p.JSONDir, err)
	}
	path := filepath.Join(p.JSONDir, "BENCH_"+id+".json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fmt.Errorf("bench: write %s results: %w", id, err)
	}
	return nil
}

// grantAll is a convenience consent map for baseline rows.
func grantAll(purposes ...string) map[string]bool {
	out := make(map[string]bool, len(purposes))
	for _, p := range purposes {
		out[p] = true
	}
	return out
}
