// SC8 — multi-node subject routing: insert/access scaling across cluster
// sizes in deterministic device-op units, plus the cross-node erasure
// propagation invariants (the copy-ledger contract).
package bench

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/simclock"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// SC8Row is one fleet size's scaling measurement. Ops are PD-disk device
// operations (reads+writes) — the deterministic unit every SC experiment
// uses where wall-clock would break byte-identical JSON. CriticalOps is
// the busiest node's share: with nodes running independently, the fleet's
// completion time is its critical path, so TotalOps(1 node) / CriticalOps
// (k nodes) is the idealized speedup the routing actually exposes.
type SC8Row struct {
	Nodes             int     `json:"nodes"`
	InsertTotalOps    uint64  `json:"insert_total_ops"`
	InsertCriticalOps uint64  `json:"insert_critical_ops"`
	InsertSpeedup     float64 `json:"insert_speedup"`
	AccessTotalOps    uint64  `json:"access_total_ops"`
	AccessCriticalOps uint64  `json:"access_critical_ops"`
	AccessSpeedup     float64 `json:"access_speedup"`
}

// SC8Report is the machine-readable SC8 result (BENCH_SC8.json).
type SC8Report struct {
	Experiment string   `json:"experiment"`
	Schema     int      `json:"schema"`
	Comment    string   `json:"comment,omitempty"`
	Rows       []SC8Row `json:"rows"`
	Summary    struct {
		// Subjects is the routed population; the speedups echo the rows
		// (gated as floors: the routing must keep exposing the fleet's
		// parallelism).
		Subjects       int     `json:"subjects"`
		InsertSpeedup2 float64 `json:"insert_speedup_2"`
		InsertSpeedup4 float64 `json:"insert_speedup_4"`
		AccessSpeedup2 float64 `json:"access_speedup_2"`
		AccessSpeedup4 float64 `json:"access_speedup_4"`
		// The copy-ledger contract, checked exactly (invariants, no
		// regress margin): after Erase on the home node — with one
		// copy-holding node failing the first fan-out — every ledger-named
		// remote copy is unreadable within one propagation window, the
		// subject's ledger entries are drained, the deferred sync was
		// retried within the window, and no node's PD disk holds the
		// erased plaintext.
		CopySubjects        int  `json:"copy_subjects"`
		ErasePropagated     bool `json:"erase_propagated"`
		LedgerDrained       bool `json:"ledger_drained"`
		RetriedWithinWindow bool `json:"retried_within_window"`
		RemoteResidueHits   int  `json:"remote_residue_hits"`
	} `json:"summary"`
}

// sc8NodeOpts is the deterministic per-node template: seeded vault
// entropy, caches disabled so device ops count real work, simulation-grade
// escrow keys.
func sc8NodeOpts(clk *simclock.Sim, seed uint64) core.Options {
	return core.Options{
		Clock:         clk,
		CryptoRand:    xrand.NewReader(seed),
		AuthorityBits: 1024,
		PDDiskBlocks:  16384,
		NPDDiskBlocks: 4096,
		NInodes:       8192,
		JournalBlocks: 256,
		Workers:       2,
		MembraneCache: -1,
		BlockCache:    -1,
	}
}

// sc8Fleet boots a k-node cluster with the Listing 1 type everywhere.
func sc8Fleet(k int, seed uint64, window time.Duration) (*cluster.Cluster, *simclock.Sim, error) {
	clk := simclock.NewSim(simclock.Epoch)
	c, err := cluster.Boot(cluster.Options{
		Nodes:             k,
		Node:              sc8NodeOpts(clk, seed),
		PropagationWindow: window,
	})
	if err != nil {
		return nil, nil, err
	}
	if err := c.DeclareTypesDSL(listing1DSL, aliasOpts()); err != nil {
		return nil, nil, err
	}
	return c, clk, nil
}

// pdOps snapshots each node's PD-disk device operations.
func pdOps(c *cluster.Cluster) []uint64 {
	out := make([]uint64, c.Nodes())
	for i := range out {
		st := c.Node(i).Stats().PDDisk
		out[i] = st.Reads + st.Writes
	}
	return out
}

// deltaOps folds before/after snapshots into (total, critical-path max).
func deltaOps(before, after []uint64) (total, max uint64) {
	for i := range after {
		d := after[i] - before[i]
		total += d
		if d > max {
			max = d
		}
	}
	return total, max
}

// runSC8 measures what the multi-node router buys and what it guarantees:
// the same insert + subject-access workload on 1-, 2- and 4-node fleets
// (speedup = single-node total ops over the k-node critical path), then
// the erasure-propagation contract on a 4-node fleet with materialized
// cross-node copies and one injected fan-out failure.
func runSC8(w io.Writer, p Params) error {
	nSubjects := p.subjects(96, 48)
	nCopy := 12
	if p.Small {
		nCopy = 6
	}
	const window = time.Minute

	report := SC8Report{Experiment: "SC8", Schema: 1}
	report.Summary.Subjects = nSubjects
	subjects := workload.SubjectIDs(nSubjects)

	// --- scaling: identical workload per fleet size, seeded identically ---
	for _, k := range []int{1, 2, 4} {
		c, _, err := sc8Fleet(k, p.Seed, window)
		if err != nil {
			return err
		}
		rng := xrand.New(p.Seed)
		before := pdOps(c)
		for _, s := range subjects {
			if _, err := c.Insert("user", s, workload.UserRecord(rng, s)); err != nil {
				return err
			}
		}
		mid := pdOps(c)
		if _, err := c.AccessBatch(subjects); err != nil {
			return err
		}
		after := pdOps(c)

		row := SC8Row{Nodes: k}
		row.InsertTotalOps, row.InsertCriticalOps = deltaOps(before, mid)
		row.AccessTotalOps, row.AccessCriticalOps = deltaOps(mid, after)
		report.Rows = append(report.Rows, row)
	}
	base := report.Rows[0]
	for i := range report.Rows {
		r := &report.Rows[i]
		r.InsertSpeedup = float64(base.InsertTotalOps) / float64(r.InsertCriticalOps)
		r.AccessSpeedup = float64(base.AccessTotalOps) / float64(r.AccessCriticalOps)
		switch r.Nodes {
		case 2:
			report.Summary.InsertSpeedup2 = r.InsertSpeedup
			report.Summary.AccessSpeedup2 = r.AccessSpeedup
		case 4:
			report.Summary.InsertSpeedup4 = r.InsertSpeedup
			report.Summary.AccessSpeedup4 = r.AccessSpeedup
		}
	}

	// --- propagation contract: copies, injected failure, bounded retry ---
	c, clk, err := sc8Fleet(4, p.Seed+1, window)
	if err != nil {
		return err
	}
	rng := xrand.New(p.Seed + 1)
	copySubjects := subjects[:nCopy]
	secrets := make(map[string]string, nCopy)
	targets := make(map[string]int, nCopy)
	for _, s := range copySubjects {
		rec := workload.UserRecord(rng, s)
		secrets[s] = rec["pwd"].S
		pdid, err := c.Insert("user", s, rec)
		if err != nil {
			return err
		}
		target := (c.HomeOf(s) + 1) % c.Nodes()
		targets[s] = target
		if _, err := c.MaterializeCopy(pdid, target); err != nil {
			return err
		}
	}
	// One copy-holding node drops the first fan-out attempt: the erase
	// must report the partial failure and the propagator must finish the
	// job within one window.
	victim := copySubjects[0]
	c.FailNode(targets[victim], 1)
	report.Summary.CopySubjects = nCopy

	deferred := 0
	for _, s := range copySubjects {
		rep, err := c.Erase(s)
		if err != nil {
			return err
		}
		if !rep.Fanout.OK() {
			deferred++
		}
	}
	prop := c.StartPropagator()
	clk.Advance(window + time.Second)
	prop.Sync()
	prop.Stop()
	report.Summary.RetriedWithinWindow = deferred == 1 && c.PendingSyncs() == 0

	// Every ledger-named copy unreadable, every ledger entry drained,
	// zero plaintext residue on any node's PD disk.
	erased, drained := true, true
	residue := 0
	for _, s := range copySubjects {
		if len(c.LedgerFor(s)) != 0 {
			drained = false
		}
		node := c.Node(targets[s])
		for _, pdid := range listSubject(node, s) {
			if _, err := node.DBFS().GetRecord(node.DEDToken(), pdid); err == nil {
				erased = false
			}
		}
		for i := 0; i < c.Nodes(); i++ {
			residue += len(c.Node(i).ResidueScan([]byte(secrets[s])))
		}
	}
	report.Summary.ErasePropagated = erased
	report.Summary.LedgerDrained = drained
	report.Summary.RemoteResidueHits = residue

	rows := make([][]string, 0, len(report.Rows))
	for _, r := range report.Rows {
		rows = append(rows, []string{
			strconv.Itoa(r.Nodes),
			strconv.FormatUint(r.InsertTotalOps, 10), strconv.FormatUint(r.InsertCriticalOps, 10),
			fmt.Sprintf("%.2fx", r.InsertSpeedup),
			strconv.FormatUint(r.AccessTotalOps, 10), strconv.FormatUint(r.AccessCriticalOps, 10),
			fmt.Sprintf("%.2fx", r.AccessSpeedup),
		})
	}
	table(w, []string{"nodes", "ins ops", "ins crit", "ins speedup", "acc ops", "acc crit", "acc speedup"}, rows)
	fmt.Fprintf(w, "  %d subjects routed by raw subject hash; speedup = 1-node total ops / k-node critical path\n", nSubjects)
	fmt.Fprintf(w, "  propagation: %d subjects with cross-node copies, 1 injected fan-out failure\n", nCopy)
	fmt.Fprintf(w, "  erase propagated=%v ledger drained=%v retried within %s=%v residue hits=%d\n",
		report.Summary.ErasePropagated, report.Summary.LedgerDrained, window,
		report.Summary.RetriedWithinWindow, report.Summary.RemoteResidueHits)
	fmt.Fprintln(w, "  expectation: insert/access speedups hold their floors (>=1.6x at 2 nodes, >=2.5x at 4),")
	fmt.Fprintln(w, "  and every ledger-named copy of an erased subject is dead within one propagation window")
	return writeJSON(p, "SC8", &report)
}

// listSubject lists a subject's pdids on one node (empty when none).
func listSubject(n *core.System, subject string) []string {
	pdids, err := n.DBFS().ListBySubject(n.DEDToken(), subject)
	if err != nil {
		return nil
	}
	return pdids
}
