package bench

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every experiment in DESIGN.md's per-experiment index must exist.
	want := []string{"F1L", "F1R", "F2V1", "F2V2", "F3", "F4P", "L1", "L23",
		"IA", "IF", "OV1", "OV2", "OV3", "OV4", "OV5", "OV6", "SC1", "SC2", "SC3", "SC4", "SC5", "SC6", "SC7", "SC8", "SC9"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Fatalf("registry[%d] = %s, want %s", i, reg[i].ID, id)
		}
		if reg[i].Paper == "" || reg[i].Title == "" || reg[i].Run == nil {
			t.Fatalf("experiment %s incomplete: %+v", id, reg[i])
		}
	}
	if _, ok := Lookup("F2V1"); !ok {
		t.Fatal("Lookup(F2V1) failed")
	}
	if _, ok := Lookup("ghost"); ok {
		t.Fatal("Lookup(ghost) succeeded")
	}
}

// TestEveryExperimentRunsSmall executes the full registry in Small mode:
// the same code paths benchfig runs, kept fast for CI.
func TestEveryExperimentRunsSmall(t *testing.T) {
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var out strings.Builder
			if err := RunOne(&out, e, Params{Seed: 42, Small: true}); err != nil {
				t.Fatalf("%s failed: %v\noutput so far:\n%s", e.ID, err, out.String())
			}
			if out.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestExpectationsHold(t *testing.T) {
	// The headline claims must be visible in the experiment outputs.
	var out strings.Builder
	e, _ := Lookup("F2V1")
	if err := e.Run(&out, Params{Seed: 1, Small: true}); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "baseline") || !strings.Contains(s, "rgpdOS") {
		t.Fatalf("F2V1 output:\n%s", s)
	}
	// The baseline line must report violated=true, the rgpdOS line false.
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "baseline (Fig.2)") && !strings.Contains(line, "true") {
			t.Fatalf("baseline did not violate: %s", line)
		}
		if strings.Contains(line, "rgpdOS") && strings.Contains(line, "true") {
			t.Fatalf("rgpdOS violated: %s", line)
		}
	}
}
