// SC9 — the GDPRBench-style macro workload: every scenario in the
// internal/workload library runs its full mixed-traffic trace against a
// freshly booted machine, paced on simclock, and reports per-op-class
// throughput + tail latency plus the regulator invariants. Latency is the
// SC8 idiom scaled to time: simulated device operations per op x a nominal
// per-op cost, so the whole scorecard is byte-identical for a fixed seed.
package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/simclock"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// SC9Report is the machine-readable SC9 result (BENCH_SC9.json): one
// scorecard per scenario, in library order.
type SC9Report struct {
	Experiment string                `json:"experiment"`
	Schema     int                   `json:"schema"`
	Comment    string                `json:"comment,omitempty"`
	Scenarios  []*workload.Scorecard `json:"scenarios"`
}

// sc9Boot sizes and boots one deterministic machine for a scenario trace:
// enough blocks/inodes for the seeded population plus every insert the
// trace will issue, seeded vault entropy, a simulated clock for pacing.
func sc9Boot(mix workload.MacroMix, ops []workload.Op, seed uint64) (*core.System, error) {
	blocks, npdBlocks, inodes := workload.BootSizing(mix, ops)
	return core.Boot(core.Options{
		Clock:         simclock.NewSim(simclock.Epoch),
		CryptoRand:    xrand.NewReader(seed),
		AuthorityBits: 1024,
		PDDiskBlocks:  blocks,
		NPDDiskBlocks: npdBlocks,
		NInodes:       inodes,
		JournalBlocks: 256,
		Workers:       2,
	})
}

// runSC9 executes the three macro scenarios on single systems and emits
// their scorecards. Params.Small selects each scenario's CI-scale mix;
// Params.Subjects overrides the population when set.
func runSC9(w io.Writer, p Params) error {
	report := SC9Report{Experiment: "SC9", Schema: 1}
	for _, sc := range workload.Scenarios() {
		mix := sc.MixFor(p.Small)
		if p.Subjects > 0 {
			mix.Subjects = p.Subjects
			if p.Small {
				sc.SmallMix.Subjects = p.Subjects
			} else {
				sc.Mix.Subjects = p.Subjects
			}
		}
		ops, err := workload.Generate(mix, p.Seed)
		if err != nil {
			return err
		}
		sys, err := sc9Boot(mix, ops, p.Seed)
		if err != nil {
			return err
		}
		card, err := workload.RunScenario(workload.NewSystemTarget(sys), sc,
			workload.RunConfig{Seed: p.Seed, Small: p.Small, Pace: true})
		if err != nil {
			return fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		workload.WriteScorecard(w, card)
		report.Scenarios = append(report.Scenarios, card)
	}
	fmt.Fprintln(w, "  expectation: per-class throughput holds its floors, p99 its ceilings, and every")
	fmt.Fprintln(w, "  exact invariant (zero residue, zero erased-readable, zero consent mismatches) holds")
	return writeJSON(p, "SC9", &report)
}
