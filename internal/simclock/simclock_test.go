package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestSimZeroValueStartsAtEpoch(t *testing.T) {
	var s Sim
	if got := s.Now(); !got.Equal(Epoch) {
		t.Fatalf("zero-value Sim.Now() = %v, want %v", got, Epoch)
	}
}

func TestNewSimZeroStartIsEpoch(t *testing.T) {
	s := NewSim(time.Time{})
	if got := s.Now(); !got.Equal(Epoch) {
		t.Fatalf("NewSim(zero).Now() = %v, want %v", got, Epoch)
	}
}

func TestNewSimCustomStart(t *testing.T) {
	start := time.Date(2024, time.June, 1, 12, 0, 0, 0, time.UTC)
	s := NewSim(start)
	if got := s.Now(); !got.Equal(start) {
		t.Fatalf("Now() = %v, want %v", got, start)
	}
}

func TestAdvance(t *testing.T) {
	s := NewSim(Epoch)
	got := s.Advance(90 * time.Minute)
	want := Epoch.Add(90 * time.Minute)
	if !got.Equal(want) {
		t.Fatalf("Advance returned %v, want %v", got, want)
	}
	if now := s.Now(); !now.Equal(want) {
		t.Fatalf("Now() after Advance = %v, want %v", now, want)
	}
}

func TestAdvanceNegativeIgnored(t *testing.T) {
	s := NewSim(Epoch)
	s.Advance(-time.Hour)
	if got := s.Now(); !got.Equal(Epoch) {
		t.Fatalf("negative Advance moved clock to %v, want %v", got, Epoch)
	}
}

func TestSetMonotonic(t *testing.T) {
	s := NewSim(Epoch)
	later := Epoch.Add(48 * time.Hour)
	s.Set(later)
	if got := s.Now(); !got.Equal(later) {
		t.Fatalf("Set forward: Now() = %v, want %v", got, later)
	}
	s.Set(Epoch) // earlier: must be ignored
	if got := s.Now(); !got.Equal(later) {
		t.Fatalf("Set backward moved clock to %v, want %v", got, later)
	}
}

func TestSimConcurrentAdvance(t *testing.T) {
	s := NewSim(Epoch)
	const (
		workers = 8
		steps   = 100
	)
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for j := 0; j < steps; j++ {
				s.Advance(time.Second)
			}
		}()
	}
	wg.Wait()
	want := Epoch.Add(workers * steps * time.Second)
	if got := s.Now(); !got.Equal(want) {
		t.Fatalf("concurrent Advance: Now() = %v, want %v", got, want)
	}
}

func TestRealClockProgresses(t *testing.T) {
	var r Real
	a := r.Now()
	b := r.Now()
	if b.Before(a) {
		t.Fatalf("Real clock went backwards: %v then %v", a, b)
	}
}
