package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestSimZeroValueStartsAtEpoch(t *testing.T) {
	var s Sim
	if got := s.Now(); !got.Equal(Epoch) {
		t.Fatalf("zero-value Sim.Now() = %v, want %v", got, Epoch)
	}
}

func TestNewSimZeroStartIsEpoch(t *testing.T) {
	s := NewSim(time.Time{})
	if got := s.Now(); !got.Equal(Epoch) {
		t.Fatalf("NewSim(zero).Now() = %v, want %v", got, Epoch)
	}
}

func TestNewSimCustomStart(t *testing.T) {
	start := time.Date(2024, time.June, 1, 12, 0, 0, 0, time.UTC)
	s := NewSim(start)
	if got := s.Now(); !got.Equal(start) {
		t.Fatalf("Now() = %v, want %v", got, start)
	}
}

func TestAdvance(t *testing.T) {
	s := NewSim(Epoch)
	got := s.Advance(90 * time.Minute)
	want := Epoch.Add(90 * time.Minute)
	if !got.Equal(want) {
		t.Fatalf("Advance returned %v, want %v", got, want)
	}
	if now := s.Now(); !now.Equal(want) {
		t.Fatalf("Now() after Advance = %v, want %v", now, want)
	}
}

func TestAdvanceNegativeIgnored(t *testing.T) {
	s := NewSim(Epoch)
	s.Advance(-time.Hour)
	if got := s.Now(); !got.Equal(Epoch) {
		t.Fatalf("negative Advance moved clock to %v, want %v", got, Epoch)
	}
}

func TestSetMonotonic(t *testing.T) {
	s := NewSim(Epoch)
	later := Epoch.Add(48 * time.Hour)
	s.Set(later)
	if got := s.Now(); !got.Equal(later) {
		t.Fatalf("Set forward: Now() = %v, want %v", got, later)
	}
	s.Set(Epoch) // earlier: must be ignored
	if got := s.Now(); !got.Equal(later) {
		t.Fatalf("Set backward moved clock to %v, want %v", got, later)
	}
}

func TestSimConcurrentAdvance(t *testing.T) {
	s := NewSim(Epoch)
	const (
		workers = 8
		steps   = 100
	)
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for j := 0; j < steps; j++ {
				s.Advance(time.Second)
			}
		}()
	}
	wg.Wait()
	want := Epoch.Add(workers * steps * time.Second)
	if got := s.Now(); !got.Equal(want) {
		t.Fatalf("concurrent Advance: Now() = %v, want %v", got, want)
	}
}

func TestRealClockProgresses(t *testing.T) {
	var r Real
	a := r.Now()
	b := r.Now()
	if b.Before(a) {
		t.Fatalf("Real clock went backwards: %v then %v", a, b)
	}
}

func TestSimWaitUntilPastDeadlineReturnsImmediately(t *testing.T) {
	s := NewSim(Epoch)
	if !s.WaitUntil(Epoch, nil) {
		t.Fatal("WaitUntil(now) = false, want true")
	}
	if !s.WaitUntil(Epoch.Add(-time.Hour), nil) {
		t.Fatal("WaitUntil(past) = false, want true")
	}
}

func TestSimWaitUntilWokenByAdvance(t *testing.T) {
	s := NewSim(Epoch)
	deadline := Epoch.Add(time.Minute)
	done := make(chan bool, 1)
	go func() { done <- s.WaitUntil(deadline, nil) }()
	// An advance short of the deadline must not wake the waiter.
	s.Advance(30 * time.Second)
	select {
	case got := <-done:
		t.Fatalf("woke early: %t", got)
	case <-time.After(20 * time.Millisecond):
	}
	s.Advance(30 * time.Second) // exactly the deadline
	select {
	case got := <-done:
		if !got {
			t.Fatal("WaitUntil = false, want true")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitUntil not woken by Advance to its deadline")
	}
}

func TestSimWaitUntilCancel(t *testing.T) {
	s := NewSim(Epoch)
	cancel := make(chan struct{})
	done := make(chan bool, 1)
	go func() { done <- s.WaitUntil(Epoch.Add(time.Hour), cancel) }()
	close(cancel)
	select {
	case got := <-done:
		if got {
			t.Fatal("cancelled WaitUntil = true, want false")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitUntil did not observe cancel")
	}
	// The cancelled waiter must be deregistered: Advance finds no stale
	// entry (would close a closed channel and panic).
	s.Advance(2 * time.Hour)
}

func TestRealWaitUntil(t *testing.T) {
	var r Real
	if !r.WaitUntil(time.Now().Add(-time.Second), nil) {
		t.Fatal("past deadline = false, want true")
	}
	if !r.WaitUntil(time.Now().Add(5*time.Millisecond), nil) {
		t.Fatal("short wait = false, want true")
	}
	cancel := make(chan struct{})
	close(cancel)
	if r.WaitUntil(time.Now().Add(time.Hour), cancel) {
		t.Fatal("cancelled wait = true, want false")
	}
}
