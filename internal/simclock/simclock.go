// Package simclock provides the time source used by every rgpdOS component.
//
// The paper's enforcement mechanisms (TTL expiry for the right to be
// forgotten, membrane timestamps, audit ordering) all depend on time. To keep
// the simulation deterministic, core packages never call time.Now directly;
// they accept a Clock. Production-style callers pass Real; tests and the
// benchmark harness pass a manual-advance Sim clock so that expiry sweeps and
// log ordering are reproducible run to run.
package simclock

import (
	"sync"
	"time"
)

// Clock is the minimal time source consumed by rgpdOS components.
type Clock interface {
	// Now reports the current instant according to this clock.
	Now() time.Time
}

// Waiter is a Clock whose instants can be awaited — what ticker-driven
// components (the retention sweeper) block on between passes. Real waits
// in wall time; Sim waits are released by Advance/Set, so a test that
// moves the clock deterministically wakes every sleeper whose deadline
// passed.
type Waiter interface {
	Clock
	// WaitUntil blocks until the clock reaches t or cancel delivers (or
	// is closed), whichever happens first. It reports whether t was
	// reached. A t at or before Now returns true immediately.
	WaitUntil(t time.Time, cancel <-chan struct{}) bool
}

// Real is a Clock backed by the wall clock.
type Real struct{}

var _ Waiter = Real{}

// Now implements Clock using time.Now.
func (Real) Now() time.Time { return time.Now() }

// WaitUntil implements Waiter with a timer.
func (Real) WaitUntil(t time.Time, cancel <-chan struct{}) bool {
	d := time.Until(t)
	if d <= 0 {
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-cancel:
		return false
	}
}

// Epoch is the default starting instant for simulated clocks. A fixed epoch
// keeps membrane timestamps and audit entries stable across runs.
var Epoch = time.Date(2023, time.January, 1, 0, 0, 0, 0, time.UTC)

// Sim is a manually advanced Clock. The zero value is ready to use and
// starts at Epoch.
type Sim struct {
	mu      sync.Mutex
	now     time.Time
	waiters map[*simWaiter]struct{}
}

// simWaiter is one blocked WaitUntil call; ch closes when the simulated
// clock reaches the deadline.
type simWaiter struct {
	deadline time.Time
	ch       chan struct{}
}

var _ Waiter = (*Sim)(nil)

// NewSim returns a Sim clock starting at the given instant. A zero start
// means Epoch.
func NewSim(start time.Time) *Sim {
	if start.IsZero() {
		start = Epoch
	}
	return &Sim{now: start}
}

// Now reports the simulated instant.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.now.IsZero() {
		s.now = Epoch
	}
	return s.now
}

// Advance moves the simulated clock forward by d and returns the new
// instant, waking every WaitUntil whose deadline passed. Negative
// durations are ignored: simulated time never rewinds, mirroring the
// monotonic clock the kernel would expose.
func (s *Sim) Advance(d time.Duration) time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.now.IsZero() {
		s.now = Epoch
	}
	if d > 0 {
		s.now = s.now.Add(d)
		s.wakeLocked()
	}
	return s.now
}

// Set jumps the simulated clock to t if t is later than the current
// instant, waking every WaitUntil whose deadline passed; earlier instants
// are ignored so time stays monotonic.
func (s *Sim) Set(t time.Time) time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.now.IsZero() {
		s.now = Epoch
	}
	if t.After(s.now) {
		s.now = t
		s.wakeLocked()
	}
	return s.now
}

// wakeLocked releases every waiter whose deadline has been reached; caller
// holds s.mu.
func (s *Sim) wakeLocked() {
	for w := range s.waiters {
		if !w.deadline.After(s.now) {
			close(w.ch)
			delete(s.waiters, w)
		}
	}
}

// WaitUntil implements Waiter: it blocks until Advance/Set moves the
// simulated clock to t or beyond, or cancel delivers. Simulated time only
// moves when a test (or harness) moves it, so a WaitUntil with no
// concurrent Advance and a quiet cancel channel blocks forever — exactly
// the determinism sweeper tests rely on.
func (s *Sim) WaitUntil(t time.Time, cancel <-chan struct{}) bool {
	s.mu.Lock()
	if s.now.IsZero() {
		s.now = Epoch
	}
	if !t.After(s.now) {
		s.mu.Unlock()
		return true
	}
	w := &simWaiter{deadline: t, ch: make(chan struct{})}
	if s.waiters == nil {
		s.waiters = make(map[*simWaiter]struct{})
	}
	s.waiters[w] = struct{}{}
	s.mu.Unlock()
	select {
	case <-w.ch:
		return true
	case <-cancel:
		s.mu.Lock()
		delete(s.waiters, w)
		s.mu.Unlock()
		return false
	}
}
