// Package simclock provides the time source used by every rgpdOS component.
//
// The paper's enforcement mechanisms (TTL expiry for the right to be
// forgotten, membrane timestamps, audit ordering) all depend on time. To keep
// the simulation deterministic, core packages never call time.Now directly;
// they accept a Clock. Production-style callers pass Real; tests and the
// benchmark harness pass a manual-advance Sim clock so that expiry sweeps and
// log ordering are reproducible run to run.
package simclock

import (
	"sync"
	"time"
)

// Clock is the minimal time source consumed by rgpdOS components.
type Clock interface {
	// Now reports the current instant according to this clock.
	Now() time.Time
}

// Real is a Clock backed by the wall clock.
type Real struct{}

var _ Clock = Real{}

// Now implements Clock using time.Now.
func (Real) Now() time.Time { return time.Now() }

// Epoch is the default starting instant for simulated clocks. A fixed epoch
// keeps membrane timestamps and audit entries stable across runs.
var Epoch = time.Date(2023, time.January, 1, 0, 0, 0, 0, time.UTC)

// Sim is a manually advanced Clock. The zero value is ready to use and
// starts at Epoch.
type Sim struct {
	mu  sync.Mutex
	now time.Time
}

var _ Clock = (*Sim)(nil)

// NewSim returns a Sim clock starting at the given instant. A zero start
// means Epoch.
func NewSim(start time.Time) *Sim {
	if start.IsZero() {
		start = Epoch
	}
	return &Sim{now: start}
}

// Now reports the simulated instant.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.now.IsZero() {
		s.now = Epoch
	}
	return s.now
}

// Advance moves the simulated clock forward by d and returns the new
// instant. Negative durations are ignored: simulated time never rewinds,
// mirroring the monotonic clock the kernel would expose.
func (s *Sim) Advance(d time.Duration) time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.now.IsZero() {
		s.now = Epoch
	}
	if d > 0 {
		s.now = s.now.Add(d)
	}
	return s.now
}

// Set jumps the simulated clock to t if t is later than the current
// instant; earlier instants are ignored so time stays monotonic.
func (s *Sim) Set(t time.Time) time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.now.IsZero() {
		s.now = Epoch
	}
	if t.After(s.now) {
		s.now = t
	}
	return s.now
}
