package coldtier

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/simclock"
)

// countTarget is a Target that counts passes and serves canned results.
type countTarget struct {
	mu     sync.Mutex
	passes int
	stats  PassStats
	err    error
}

func (ct *countTarget) RepackPass(now time.Time) (PassStats, error) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	ct.passes++
	return ct.stats, ct.err
}

func (ct *countTarget) count() int {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return ct.passes
}

func TestRepackerLifecycle(t *testing.T) {
	clk := simclock.NewSim(simclock.Epoch)
	ct := &countTarget{stats: PassStats{Demoted: 3, DedupHits: 1}}
	rp := NewRepacker(clk, ct, Options{Interval: time.Minute})

	// Sync before Start is a no-op, not a hang.
	rp.Sync()
	if got := ct.count(); got != 0 {
		t.Fatalf("passes before Start = %d, want 0", got)
	}

	rp.Start()
	rp.Start() // idempotent
	if !rp.Running() {
		t.Fatal("Running = false after Start")
	}
	rp.Sync()
	if got := ct.count(); got < 1 {
		t.Fatalf("passes after first Sync = %d, want >= 1", got)
	}

	clk.Advance(2 * time.Minute)
	rp.Sync()
	st := rp.Stats()
	if st.Passes < 2 {
		t.Fatalf("Stats.Passes = %d, want >= 2", st.Passes)
	}
	if st.Demoted != st.Passes*3 || st.DedupHits != st.Passes {
		t.Fatalf("Stats = %+v, want Demoted = 3*Passes, DedupHits = Passes", st)
	}
	if st.Errors != 0 {
		t.Fatalf("Stats.Errors = %d, want 0", st.Errors)
	}
	if !st.LastPass.Equal(clk.Now()) {
		t.Fatalf("LastPass = %v, want %v", st.LastPass, clk.Now())
	}

	rp.SetInterval(time.Second)
	if rp.Interval() != time.Second {
		t.Fatalf("Interval = %v after SetInterval", rp.Interval())
	}
	rp.SetInterval(0) // restores the default
	if rp.Interval() != DefaultRepackInterval {
		t.Fatalf("Interval = %v, want default %v", rp.Interval(), DefaultRepackInterval)
	}

	rp.Stop()
	rp.Stop() // idempotent
	if rp.Running() {
		t.Fatal("Running = true after Stop")
	}
	stopped := ct.count()
	clk.Advance(time.Hour)
	rp.Sync() // no-op while stopped
	if got := ct.count(); got != stopped {
		t.Fatalf("passes grew to %d after Stop (was %d)", got, stopped)
	}

	// A stopped repacker restarts.
	rp.Start()
	clk.Advance(DefaultRepackInterval)
	rp.Sync()
	if got := ct.count(); got <= stopped {
		t.Fatalf("passes after restart = %d, want > %d", got, stopped)
	}
	rp.Stop()
}

func TestRepackerCountsErrors(t *testing.T) {
	clk := simclock.NewSim(simclock.Epoch)
	ct := &countTarget{err: errors.New("shard offline")}
	rp := NewRepacker(clk, ct, Options{Interval: time.Minute})
	rp.Start()
	defer rp.Stop()
	rp.Sync()
	st := rp.Stats()
	if st.Passes < 1 || st.Errors != st.Passes {
		t.Fatalf("Stats = %+v, want every pass counted as error", st)
	}
	if st.Demoted != 0 {
		t.Fatalf("Stats.Demoted = %d on failing passes, want 0", st.Demoted)
	}
}

func TestRepackerDefaultInterval(t *testing.T) {
	rp := NewRepacker(nil, TargetFunc(func(time.Time) (PassStats, error) {
		return PassStats{}, nil
	}), Options{})
	if rp.Interval() != DefaultRepackInterval {
		t.Fatalf("Interval = %v, want %v", rp.Interval(), DefaultRepackInterval)
	}
}
