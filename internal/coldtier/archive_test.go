package coldtier

import (
	"bytes"
	"errors"
	"testing"
)

func TestArchiveRoundTrip(t *testing.T) {
	a := New()
	shared := []byte(`{"name":"Alice","year":1990}`)
	d1, r1 := a.Put("user/alice/1", map[string][]byte{"data": shared, "mem": []byte("m1")})
	if d1 != 0 {
		t.Fatalf("first Put dedup = %d, want 0", d1)
	}
	if r1 != len(shared)+2 {
		t.Fatalf("first Put raw = %d, want %d", r1, len(shared)+2)
	}
	// Second entry shares the data chunk: one dedup hit.
	d2, _ := a.Put("user/alice/2", map[string][]byte{"data": shared, "mem": []byte("m2")})
	if d2 != 1 {
		t.Fatalf("second Put dedup = %d, want 1", d2)
	}
	raw, stored := a.Sizes()
	if raw <= stored {
		t.Fatalf("Sizes raw %d <= stored %d, dedup should shrink stored", raw, stored)
	}

	enc, err := a.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	b, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if b.Len() != 2 {
		t.Fatalf("decoded Len = %d, want 2", b.Len())
	}
	parts, ok := b.Get("user/alice/1")
	if !ok || !bytes.Equal(parts["data"], shared) || !bytes.Equal(parts["mem"], []byte("m1")) {
		t.Fatalf("decoded entry 1 = %v, %v", parts, ok)
	}
	ids := b.IDs()
	if len(ids) != 2 || ids[0] != "user/alice/1" || ids[1] != "user/alice/2" {
		t.Fatalf("IDs = %v", ids)
	}
	// Get hands out copies: mutating the result must not corrupt chunks.
	parts["data"][0] ^= 0xff
	again, _ := b.Get("user/alice/1")
	if !bytes.Equal(again["data"], shared) {
		t.Fatal("Get returned an aliased chunk")
	}
}

func TestArchiveRefcountGC(t *testing.T) {
	a := New()
	shared := []byte("shared-bytes")
	a.Put("a", map[string][]byte{"data": shared})
	a.Put("b", map[string][]byte{"data": shared})
	if !a.Remove("a") {
		t.Fatal("Remove(a) = false")
	}
	if _, stored := a.Sizes(); stored != len(shared) {
		t.Fatalf("stored after removing one referrer = %d, want %d", stored, len(shared))
	}
	if !a.Remove("b") {
		t.Fatal("Remove(b) = false")
	}
	if raw, stored := a.Sizes(); raw != 0 || stored != 0 {
		t.Fatalf("Sizes after removing both = (%d, %d), want (0, 0)", raw, stored)
	}
	if a.Remove("a") {
		t.Fatal("Remove of absent entry = true")
	}
}

func TestArchiveReplaceGCsOldChunks(t *testing.T) {
	a := New()
	a.Put("x", map[string][]byte{"data": []byte("old-old-old")})
	a.Put("x", map[string][]byte{"data": []byte("new")})
	if a.Len() != 1 {
		t.Fatalf("Len = %d, want 1", a.Len())
	}
	if _, stored := a.Sizes(); stored != 3 {
		t.Fatalf("stored after replace = %d, want 3 (old chunk must be GC'd)", stored)
	}
}

func TestArchiveRePutUnchangedDedups(t *testing.T) {
	// Re-demotion of an unchanged record re-puts the same parts under the
	// same id: every part must dedup onto its own chunk, not GC-then-restore.
	a := New()
	parts := map[string][]byte{"data": []byte("ciphertext"), "mem": []byte("membrane")}
	a.Put("t/s/1", parts)
	_, stored0 := a.Sizes()
	dedup, _ := a.Put("t/s/1", parts)
	if dedup != 2 {
		t.Fatalf("re-put dedup = %d, want 2", dedup)
	}
	if _, stored := a.Sizes(); stored != stored0 {
		t.Fatalf("stored after unchanged re-put = %d, want %d", stored, stored0)
	}
}

func TestArchiveDeterministicEncode(t *testing.T) {
	build := func(order []string) []byte {
		a := New()
		for _, id := range order {
			a.Put(id, map[string][]byte{"data": []byte("payload-" + id), "mem": []byte("m")})
		}
		enc, err := a.Encode()
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		return enc
	}
	e1 := build([]string{"t/s/1", "t/s/2", "t/s/3"})
	e2 := build([]string{"t/s/3", "t/s/1", "t/s/2"})
	if !bytes.Equal(e1, e2) {
		t.Fatal("Encode is insertion-order dependent; must be deterministic for SC7")
	}
}

func TestArchiveErasedMarker(t *testing.T) {
	a := New()
	a.Put("gone", map[string][]byte{"data": []byte("bytes")})
	a.MarkErased("gone")
	if _, stored := a.Sizes(); stored != 0 {
		t.Fatalf("stored after MarkErased = %d, want 0 (chunks dropped)", stored)
	}
	parts, ok := a.Get("gone")
	if !ok || parts != nil {
		t.Fatalf("Get(erased) = (%v, %v), want (nil, true)", parts, ok)
	}
	enc, err := a.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	b, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	e, ok := b.Lookup("gone")
	if !ok || !e.Erased {
		t.Fatalf("decoded entry = (%+v, %v), want erased marker", e, ok)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	a := New()
	a.Put("t/s/1", map[string][]byte{"data": []byte("some-record-bytes")})
	enc, err := a.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}

	if _, err := Decode([]byte("XYZ")); !errors.Is(err, ErrBadArchive) {
		t.Fatalf("Decode(bad magic) = %v, want ErrBadArchive", err)
	}
	if _, err := Decode(enc[:len(enc)-4]); !errors.Is(err, ErrBadArchive) {
		t.Fatalf("Decode(truncated) = %v, want ErrBadArchive", err)
	}

	// A chunk that fails its content address must be rejected, not served.
	bad := New()
	bad.entries["x"] = Entry{Parts: map[string]string{"data": hashOf([]byte("right"))}}
	bad.chunks[hashOf([]byte("right"))] = []byte("wrong")
	bad.refs[hashOf([]byte("right"))] = 1
	enc2, err := bad.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if _, err := Decode(enc2); !errors.Is(err, ErrBadArchive) {
		t.Fatalf("Decode(hash mismatch) = %v, want ErrBadArchive", err)
	}

	// An entry referencing a missing chunk must be rejected.
	dangling := New()
	dangling.entries["x"] = Entry{Parts: map[string]string{"data": hashOf([]byte("absent"))}}
	enc3, err := dangling.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if _, err := Decode(enc3); !errors.Is(err, ErrBadArchive) {
		t.Fatalf("Decode(dangling reference) = %v, want ErrBadArchive", err)
	}
}
