package coldtier

// The background repacker: a ticker-driven loop (the rights.Sweeper
// pattern) that fires repack passes on the machine clock. The pass itself
// lives in dbfs — the repacker only owns cadence, lifecycle and counters,
// so the package stays free of a dbfs dependency and core can wire the two
// together with a closure carrying the DED's capability token.

import (
	"sync"
	"time"

	"repro/internal/simclock"
)

// PassStats is what one repack pass over the store reports.
type PassStats struct {
	// Demoted counts records migrated hot → archive this pass; Subjects
	// counts the subject archives rewritten.
	Demoted  int
	Subjects int
	// DedupHits counts parts that content-addressed onto chunks already
	// archived (unchanged records re-demoting after a promotion).
	DedupHits int
	// RawBytes / StoredBytes are the logical bytes demoted this pass and
	// the unique chunk bytes they occupy after dedup (before compression).
	RawBytes    int64
	StoredBytes int64
}

// Target runs one repack pass at the given instant. dbfs.Store's RepackCold
// is the real implementation; core binds it with its token via TargetFunc.
type Target interface {
	RepackPass(now time.Time) (PassStats, error)
}

// TargetFunc adapts a closure to Target.
type TargetFunc func(now time.Time) (PassStats, error)

// RepackPass implements Target.
func (f TargetFunc) RepackPass(now time.Time) (PassStats, error) { return f(now) }

// Stats counts the background repacker's activity.
type Stats struct {
	// Passes counts completed repack passes; Errors the failed subset.
	Passes uint64
	Errors uint64
	// Demoted / DedupHits accumulate the per-pass results.
	Demoted   uint64
	DedupHits uint64
	// LastPass is the start instant of the last completed pass.
	LastPass time.Time
}

// DefaultRepackInterval is the fallback pass cadence when
// Options.Interval is unset.
const DefaultRepackInterval = time.Minute

// Options configures a Repacker.
type Options struct {
	// Interval is the gap between repack passes. Default one minute.
	Interval time.Duration
}

// Repacker is the background demotion loop: every Interval it runs one
// repack pass against its target. Start/Stop are idempotent and a stopped
// repacker can be restarted; it waits on simclock.Waiter, so simclock tests
// drive it deterministically (advance, Sync, assert).
type Repacker struct {
	clock  simclock.Clock
	target Target
	// wake nudges the loop out of its clock wait (Sync, Stop,
	// SetInterval).
	wake chan struct{}

	mu          sync.Mutex
	interval    time.Duration
	cond        *sync.Cond
	running     bool
	stop        chan struct{}
	done        chan struct{}
	forced      bool
	last        time.Time
	lastCovered time.Time
	stats       Stats
}

// NewRepacker builds a repacker over target on clock. Call Start to run it.
func NewRepacker(clock simclock.Clock, target Target, opts Options) *Repacker {
	if clock == nil {
		clock = simclock.Real{}
	}
	iv := opts.Interval
	if iv <= 0 {
		iv = DefaultRepackInterval
	}
	rp := &Repacker{clock: clock, target: target, interval: iv, wake: make(chan struct{}, 1)}
	rp.cond = sync.NewCond(&rp.mu)
	return rp
}

// Interval reports the current pass cadence.
func (rp *Repacker) Interval() time.Duration {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return rp.interval
}

// SetInterval changes the pass cadence at runtime (d <= 0 restores
// DefaultRepackInterval) and kicks a sleeping loop so the new cadence takes
// effect immediately.
func (rp *Repacker) SetInterval(d time.Duration) {
	if d <= 0 {
		d = DefaultRepackInterval
	}
	rp.mu.Lock()
	rp.interval = d
	rp.mu.Unlock()
	rp.kickWake()
}

// Start launches the background loop. Starting a running repacker is a
// no-op.
func (rp *Repacker) Start() {
	rp.mu.Lock()
	if rp.running {
		rp.mu.Unlock()
		return
	}
	rp.running = true
	rp.stop = make(chan struct{})
	rp.done = make(chan struct{})
	rp.last = rp.clock.Now()
	stop, done := rp.stop, rp.done
	rp.mu.Unlock()
	go rp.loop(stop, done)
}

// Stop halts the loop and waits for it to exit; an in-flight pass finishes.
// Stopping a stopped repacker is a no-op.
func (rp *Repacker) Stop() {
	rp.mu.Lock()
	if !rp.running {
		rp.mu.Unlock()
		return
	}
	rp.running = false
	stop, done := rp.stop, rp.done
	rp.mu.Unlock()
	close(stop)
	rp.kickWake()
	<-done
	rp.mu.Lock()
	rp.cond.Broadcast() // unblock Sync callers
	rp.mu.Unlock()
}

// Running reports whether the loop is active.
func (rp *Repacker) Running() bool {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return rp.running
}

// Stats snapshots the repacker counters.
func (rp *Repacker) Stats() Stats {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return rp.stats
}

// Sync forces a repack pass covering the instant of the call and blocks
// until it completes (or the repacker stops) — the deterministic join
// point for simclock tests.
func (rp *Repacker) Sync() {
	target := rp.clock.Now()
	rp.mu.Lock()
	if !rp.running {
		rp.mu.Unlock()
		return
	}
	rp.forced = true
	rp.mu.Unlock()
	rp.kickWake()
	rp.mu.Lock()
	for rp.running && rp.lastCovered.Before(target) {
		rp.cond.Wait()
	}
	rp.mu.Unlock()
}

// kickWake nudges the loop; a pending nudge is enough, extra ones drop.
func (rp *Repacker) kickWake() {
	select {
	case rp.wake <- struct{}{}:
	default:
	}
}

// loop is the repacker body: run a pass once Interval has elapsed since the
// last one (or a Sync forces one), otherwise sleep until the pass is due.
func (rp *Repacker) loop(stop, done chan struct{}) {
	defer close(done)
	for {
		select {
		case <-stop:
			return
		default:
		}
		now := rp.clock.Now()
		rp.mu.Lock()
		forced := rp.forced
		rp.forced = false
		next := rp.last.Add(rp.interval)
		rp.mu.Unlock()
		if forced || !now.Before(next) {
			rp.pass()
			continue
		}
		rp.waitUntil(next, stop)
	}
}

// pass runs one repack and records its outcome.
func (rp *Repacker) pass() {
	start := rp.clock.Now()
	st, err := rp.target.RepackPass(start)
	rp.mu.Lock()
	rp.stats.Passes++
	if err != nil {
		rp.stats.Errors++
	}
	rp.stats.Demoted += uint64(st.Demoted)
	rp.stats.DedupHits += uint64(st.DedupHits)
	rp.stats.LastPass = start
	rp.last = start
	if start.After(rp.lastCovered) {
		rp.lastCovered = start
	}
	rp.cond.Broadcast()
	rp.mu.Unlock()
}

// waitUntil blocks until the machine clock reaches target, a kick arrives,
// or stop closes.
func (rp *Repacker) waitUntil(target time.Time, stop chan struct{}) {
	w, ok := rp.clock.(simclock.Waiter)
	if !ok {
		// Unknown clock implementation: poll at a coarse real-time cadence.
		select {
		case <-time.After(50 * time.Millisecond):
		case <-rp.wake:
		case <-stop:
		}
		return
	}
	cancel := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		select {
		case <-stop:
			close(cancel)
		case <-rp.wake:
			close(cancel)
		case <-finished:
		}
	}()
	w.WaitUntil(target, cancel)
	close(finished)
}
