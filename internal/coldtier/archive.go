// Package coldtier implements the content-addressable compressed cold
// tier: archive containers that pack many small record files into one
// deduplicated, flate-compressed blob, and a background Repacker that
// migrates idle records into them on the machine clock.
//
// The format follows djafs (SNIPPETS.md §3): every stored byte string is
// content-addressed by its SHA-256, so identical payloads inside one
// archive are stored once. Dedup scope is a single archive — one subject's
// records, or one membrane snapshot — and NEVER crosses subjects: records
// reach the archive as cryptoshred ciphertext, and a chunk shared across
// subjects would give one subject's retained data a reference keeping
// another subject's erased bytes alive. Per-subject scope keeps the
// crypto-shredding story exact: shred the subject's key and every archived
// copy decodes to nothing.
package coldtier

import (
	"bytes"
	"compress/flate"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Sentinel errors.
var (
	// ErrBadArchive reports a container that failed to decode or whose
	// chunks do not match their content addresses.
	ErrBadArchive = errors.New("coldtier: bad archive")
	// ErrNoEntry reports a lookup for an id the archive does not hold.
	ErrNoEntry = errors.New("coldtier: no such entry")
)

// archiveMagic heads every encoded container; the trailing byte is the
// format version.
var archiveMagic = []byte{'C', 'T', 'A', '1'}

// Entry is one archived record's manifest row: part name → content address
// of its chunk. Erased marks a snapshot entry whose record was already
// crypto-shredded when the snapshot was taken — nothing to store, and
// nothing to resurrect.
type Entry struct {
	Parts  map[string]string `json:"parts,omitempty"`
	Erased bool              `json:"erased,omitempty"`
}

// Archive is an in-memory content-addressed container. Not safe for
// concurrent use; callers serialize (dbfs holds its per-shard cold mutex).
type Archive struct {
	entries map[string]Entry
	chunks  map[string][]byte
	refs    map[string]int
}

// New returns an empty archive.
func New() *Archive {
	return &Archive{
		entries: make(map[string]Entry),
		chunks:  make(map[string][]byte),
		refs:    make(map[string]int),
	}
}

// hashOf is the content address of a chunk.
func hashOf(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// Put stores (or replaces) an entry of named parts, content-addressing each
// part. It reports how many parts deduplicated against chunks already in
// the archive and the raw byte size of the parts as given.
func (a *Archive) Put(id string, parts map[string][]byte) (dedup, raw int) {
	e := Entry{Parts: make(map[string]string, len(parts))}
	names := make([]string, 0, len(parts))
	for name := range parts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := parts[name]
		raw += len(b)
		h := hashOf(b)
		if _, ok := a.chunks[h]; ok {
			dedup++
		} else {
			a.chunks[h] = append([]byte(nil), b...)
		}
		a.refs[h]++
		e.Parts[name] = h
	}
	// The old entry's references drop only after the new ones are held, so
	// an unchanged part re-put under the same id dedups onto its own chunk
	// instead of GC-then-restore.
	a.dropRefs(id)
	a.entries[id] = e
	return dedup, raw
}

// MarkErased stores an erased-marker entry: the record existed but its key
// was already shredded, so the archive records the fact and nothing else.
func (a *Archive) MarkErased(id string) {
	a.dropRefs(id)
	a.entries[id] = Entry{Erased: true}
}

// dropRefs unreferences (and garbage-collects) the chunks of id's current
// entry, if any.
func (a *Archive) dropRefs(id string) {
	e, ok := a.entries[id]
	if !ok {
		return
	}
	for _, h := range e.Parts {
		a.refs[h]--
		if a.refs[h] <= 0 {
			delete(a.refs, h)
			delete(a.chunks, h)
		}
	}
}

// Remove deletes an entry and garbage-collects chunks no other entry
// references. It reports whether the entry existed.
func (a *Archive) Remove(id string) bool {
	if _, ok := a.entries[id]; !ok {
		return false
	}
	a.dropRefs(id)
	delete(a.entries, id)
	return true
}

// Has reports whether the archive holds an entry for id (erased markers
// included).
func (a *Archive) Has(id string) bool {
	_, ok := a.entries[id]
	return ok
}

// Lookup returns id's manifest entry.
func (a *Archive) Lookup(id string) (Entry, bool) {
	e, ok := a.entries[id]
	return e, ok
}

// Get materializes an entry's parts (copies). An erased-marker entry
// returns ok with nil parts — present, but nothing to decode.
func (a *Archive) Get(id string) (parts map[string][]byte, ok bool) {
	e, found := a.entries[id]
	if !found {
		return nil, false
	}
	if e.Erased {
		return nil, true
	}
	parts = make(map[string][]byte, len(e.Parts))
	for name, h := range e.Parts {
		parts[name] = append([]byte(nil), a.chunks[h]...)
	}
	return parts, true
}

// IDs lists the archived entry ids, sorted.
func (a *Archive) IDs() []string {
	out := make([]string, 0, len(a.entries))
	for id := range a.entries {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Len reports the entry count.
func (a *Archive) Len() int { return len(a.entries) }

// Sizes reports the archive's logical footprint: raw is the byte total the
// entries reference counting every reference (what the records occupied as
// individual files, before block padding), stored the byte total of unique
// chunks actually held.
func (a *Archive) Sizes() (raw, stored int) {
	for _, e := range a.entries {
		for _, h := range e.Parts {
			raw += len(a.chunks[h])
		}
	}
	for _, b := range a.chunks {
		stored += len(b)
	}
	return raw, stored
}

// container is the serialized form (JSON inside flate): encoding/json
// writes map keys sorted, so encoding is deterministic for a given archive
// state.
type container struct {
	Entries map[string]Entry  `json:"entries"`
	Chunks  map[string][]byte `json:"chunks"` // base64 via encoding/json
}

// Encode serializes the archive: magic, then a flate stream of the JSON
// container. Content-addressed chunks of ciphertext barely compress, but
// the manifest and any plaintext parts (membranes are near-identical JSON
// across records) compress well.
func (a *Archive) Encode() ([]byte, error) {
	raw, err := json.Marshal(container{Entries: a.entries, Chunks: a.chunks})
	if err != nil {
		return nil, fmt.Errorf("coldtier: encode: %w", err)
	}
	var buf bytes.Buffer
	buf.Write(archiveMagic)
	zw, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		return nil, fmt.Errorf("coldtier: encode: %w", err)
	}
	if _, err := zw.Write(raw); err != nil {
		return nil, fmt.Errorf("coldtier: encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("coldtier: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode parses an encoded container, verifying every chunk against its
// content address and every entry reference against the chunk set — a
// truncated or bit-flipped archive fails loudly instead of serving wrong
// bytes.
func Decode(b []byte) (*Archive, error) {
	if len(b) < len(archiveMagic) || !bytes.Equal(b[:len(archiveMagic)], archiveMagic) {
		return nil, fmt.Errorf("%w: bad magic", ErrBadArchive)
	}
	zr := flate.NewReader(bytes.NewReader(b[len(archiveMagic):]))
	raw, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadArchive, err)
	}
	if err := zr.Close(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadArchive, err)
	}
	var c container
	if err := json.Unmarshal(raw, &c); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadArchive, err)
	}
	a := New()
	for h, chunk := range c.Chunks {
		if hashOf(chunk) != h {
			return nil, fmt.Errorf("%w: chunk %s fails its content address", ErrBadArchive, h)
		}
		a.chunks[h] = chunk
	}
	for id, e := range c.Entries {
		if e.Erased && len(e.Parts) > 0 {
			return nil, fmt.Errorf("%w: entry %s both erased and stored", ErrBadArchive, id)
		}
		for name, h := range e.Parts {
			if _, ok := a.chunks[h]; !ok {
				return nil, fmt.Errorf("%w: entry %s part %s references missing chunk", ErrBadArchive, id, name)
			}
			a.refs[h]++
		}
		a.entries[id] = e
	}
	return a, nil
}
