package rights

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/dbfs"
	"repro/internal/membrane"
	"repro/internal/simclock"
)

// ensureUserType declares the rig's user type if needed.
func (r *rig) ensureUserType(t *testing.T) {
	t.Helper()
	if _, err := r.store.SchemaOf(r.tok, "user"); err != nil {
		r.seedUser(t, "schema-seed", "Schema Seed", 1980)
		if _, err := r.engine.Erase("schema-seed"); err != nil {
			t.Fatal(err)
		}
		// Physically drop the seed so it does not pollute sweep results.
		pdids, err := r.store.ListBySubject(r.tok, "schema-seed")
		if err != nil {
			t.Fatal(err)
		}
		for _, pdid := range pdids {
			if err := r.store.Delete(r.tok, pdid); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// seedWithTTL inserts a user record with an explicit TTL and creation
// instant (zero createdAt = the clock's now).
func (r *rig) seedWithTTL(t *testing.T, subject string, ttl time.Duration, createdAt time.Time) string {
	t.Helper()
	r.ensureUserType(t)
	m := membrane.New("", "user", subject)
	m.TTL = ttl
	m.CreatedAt = createdAt
	m.Consents["purpose3"] = membrane.Grant{Kind: membrane.GrantAll}
	pdid, err := r.store.Insert(r.tok, "user", subject, dbfs.Record{
		"name": dbfs.S("U " + subject), "year_of_birthdate": dbfs.I(1990),
	}, m)
	if err != nil {
		t.Fatal(err)
	}
	return pdid
}

func (r *rig) countRecords(t *testing.T, subject string) int {
	t.Helper()
	pdids, err := r.store.ListBySubject(r.tok, subject)
	if err != nil {
		t.Fatal(err)
	}
	return len(pdids)
}

// waitFor polls cond (real time) until it holds or the deadline passes —
// the join point for asserting the sweeper's autonomous (non-Sync) wakeups.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSweeperExpiryOnTickBoundary drives the boundary case of the
// deadline semantics: ExpiredAt is strict-after, so a record whose TTL
// lands exactly on the sweep tick is NOT yet expired at that tick and is
// erased on the first tick after it.
func TestSweeperExpiryOnTickBoundary(t *testing.T) {
	r := newRig(t)
	const ttl = 24 * time.Hour
	r.seedWithTTL(t, "boundary", ttl, time.Time{}) // created at the epoch
	sw := r.engine.StartSweeper(SweeperOptions{Interval: time.Hour})
	defer sw.Stop()

	// Exactly at the deadline: not expired, nothing erased.
	r.clock.Advance(ttl)
	sw.Sync()
	if got := r.countRecords(t, "boundary"); got != 1 {
		t.Fatalf("records at exact deadline = %d, want 1 (expiry is strict-after)", got)
	}
	// The first instant after the deadline: erased.
	r.clock.Advance(time.Nanosecond)
	sw.Sync()
	if got := r.countRecords(t, "boundary"); got != 0 {
		t.Fatalf("records one instant past deadline = %d, want 0", got)
	}
	st := sw.Stats()
	if st.Deleted != 1 {
		t.Fatalf("sweeper stats deleted = %d, want 1", st.Deleted)
	}
}

// TestSweeperWakesOnAdvance proves the loop is genuinely ticker-driven off
// the sim clock: advancing past the deadline wakes the sweeper's WaitUntil
// and the record is erased with no Sync (no forced pass) involved.
func TestSweeperWakesOnAdvance(t *testing.T) {
	r := newRig(t)
	r.seedWithTTL(t, "autonomous", time.Hour, time.Time{})
	sw := r.engine.StartSweeper(SweeperOptions{Interval: 12 * time.Hour})
	defer sw.Stop()

	r.clock.Advance(time.Hour + time.Millisecond)
	waitFor(t, "autonomous deadline sweep", func() bool {
		return r.countRecords(t, "autonomous") == 0
	})
}

// TestSweeperExpiryDuringRunningSweep covers a deadline passing while a
// sweep pass is already in flight: the in-flight pass (snapshotted at its
// start instant) must not delete the record, and the next pass — within
// one grace window — must.
func TestSweeperExpiryDuringRunningSweep(t *testing.T) {
	r := newRig(t)
	pdA := r.seedWithTTL(t, "early", time.Hour, time.Time{})
	r.seedWithTTL(t, "late", 2*time.Hour, time.Time{})

	// Prime the index, then run one pass (the exact code path the
	// background sweeper drives) whose scan has already snapshotted its
	// instant when "late"'s deadline passes mid-pass.
	if _, err := r.engine.SweepExpired(); err != nil {
		t.Fatal(err)
	}
	fired := false
	r.engine.sweepScanHook = func() {
		if !fired {
			fired = true
			r.clock.Advance(2 * time.Hour) // now well past "late"'s deadline
		}
	}
	r.clock.Advance(time.Hour + time.Nanosecond) // "early" due, "late" not
	deleted, err := r.engine.SweepExpired()
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("scan hook did not fire")
	}
	if len(deleted) != 1 || deleted[0] != pdA {
		t.Fatalf("in-flight pass deleted %v, want only [%s]", deleted, pdA)
	}
	// "late" expired mid-pass: the snapshot pass must not have deleted it…
	if got := r.countRecords(t, "late"); got != 1 {
		t.Fatalf("late records = %d, want 1 — deleted by the pass that was already running", got)
	}
	r.engine.sweepScanHook = nil

	// …and the sweeper's next pass — within late's grace window — must.
	sw := r.engine.StartSweeper(SweeperOptions{Interval: time.Hour})
	defer sw.Stop()
	sw.Sync()
	if got := r.countRecords(t, "late"); got != 0 {
		t.Fatalf("late records after next pass = %d, want 0", got)
	}
}

// TestSweeperAlreadyExpiredInsert covers a subject entering the system
// with retention already run out (backdated CreatedAt): the insert-time
// deadline notification kicks the sweeper, which erases the record without
// any clock movement or forced pass.
func TestSweeperAlreadyExpiredInsert(t *testing.T) {
	r := newRig(t)
	sw := r.engine.StartSweeper(SweeperOptions{Interval: 12 * time.Hour})
	defer sw.Stop()
	sw.Sync() // prime on an empty store

	r.clock.Advance(48 * time.Hour)
	// CreatedAt at the epoch with a 1h TTL: expired 47h ago at insert.
	r.seedWithTTL(t, "stale", time.Hour, simclock.Epoch)
	waitFor(t, "kick-driven sweep of an already-expired insert", func() bool {
		return r.countRecords(t, "stale") == 0
	})
	if st := sw.Stats(); st.Deleted != 1 {
		t.Fatalf("sweeper stats deleted = %d, want 1", st.Deleted)
	}
}

// TestSweeperStopRestartIdempotence: double Start is a no-op, double Stop
// is a no-op, a restarted sweeper keeps enforcing deadlines, and stopping
// leaves no loop goroutine behind.
func TestSweeperStopRestartIdempotence(t *testing.T) {
	r := newRig(t)
	r.seedWithTTL(t, "first", time.Hour, time.Time{})
	before := runtime.NumGoroutine()

	sw := NewSweeper(r.engine, SweeperOptions{Interval: time.Hour})
	sw.Start()
	sw.Start() // idempotent: no second loop
	r.clock.Advance(time.Hour + time.Nanosecond)
	sw.Sync()
	if got := r.countRecords(t, "first"); got != 0 {
		t.Fatalf("first records = %d, want 0", got)
	}
	sw.Stop()
	sw.Stop() // idempotent
	if sw.Running() {
		t.Fatal("Running after Stop")
	}
	sw.Sync() // no-op on a stopped sweeper, must not block

	// While stopped, a record expires; nothing may erase it.
	r.seedWithTTL(t, "second", time.Hour, time.Time{})
	r.clock.Advance(2 * time.Hour)
	if got := r.countRecords(t, "second"); got != 1 {
		t.Fatalf("stopped sweeper erased records: %d left, want 1", got)
	}

	// Restart: the backlog is swept again.
	sw.Start()
	sw.Sync()
	if got := r.countRecords(t, "second"); got != 0 {
		t.Fatalf("second records after restart = %d, want 0", got)
	}
	sw.Stop()

	waitFor(t, "sweeper goroutines to exit", func() bool {
		return runtime.NumGoroutine() <= before+1
	})
}

// TestSweeperGraceWindow is the acceptance property under -race: across a
// staggered population, after any clock advance and completed pass, every
// record whose deadline precedes the pass instant is physically deleted —
// i.e. nothing expired survives a completed sweep, so with passes at most
// one Interval apart every expired record is erased within one grace
// window.
func TestSweeperGraceWindow(t *testing.T) {
	r := newRig(t)
	const n = 12
	type recInfo struct {
		subject  string
		deadline time.Time
	}
	recs := make([]recInfo, n)
	for i := 0; i < n; i++ {
		ttl := time.Duration(i+1) * time.Hour
		subject := fmt.Sprintf("grace-%d", i)
		r.seedWithTTL(t, subject, ttl, time.Time{})
		recs[i] = recInfo{subject: subject, deadline: simclock.Epoch.Add(ttl)}
	}
	sw := r.engine.StartSweeper(SweeperOptions{Interval: 30 * time.Minute})
	defer sw.Stop()

	for step := 0; step < 2*n; step++ {
		now := r.clock.Advance(30*time.Minute + time.Nanosecond)
		sw.Sync()
		for _, rec := range recs {
			left := r.countRecords(t, rec.subject)
			if rec.deadline.Before(now) && left != 0 {
				t.Fatalf("at %v: %s (deadline %v) still has %d records", now, rec.subject, rec.deadline, left)
			}
			if !rec.deadline.Before(now) && left != 1 {
				t.Fatalf("at %v: %s (deadline %v) erased early (%d records)", now, rec.subject, rec.deadline, left)
			}
		}
	}
	if st := sw.Stats(); st.Deleted != n {
		t.Fatalf("sweeper deleted = %d, want %d", st.Deleted, n)
	}
}

// TestScopedSweepSkipsUntouchedShards is the due-index satellite: after
// priming, a sweep with one due subject must take shard locks only on that
// subject's shard — the other subject's shard-scan counter does not move.
func TestScopedSweepSkipsUntouchedShards(t *testing.T) {
	r := newRig(t)
	// Find two subjects hashing to different shards.
	subjA := "shard-a-0"
	subjB := ""
	for i := 0; i < 1000 && subjB == ""; i++ {
		cand := fmt.Sprintf("shard-b-%d", i)
		if r.store.ShardOf(cand) != r.store.ShardOf(subjA) {
			subjB = cand
		}
	}
	if subjB == "" {
		t.Fatal("could not find a second shard")
	}
	pdA := r.seedWithTTL(t, subjA, time.Hour, time.Time{})
	r.seedWithTTL(t, subjB, 1000*time.Hour, time.Time{})

	// Priming pass: scans everything, seeds exact deadlines.
	if deleted, err := r.engine.SweepExpired(); err != nil || len(deleted) != 0 {
		t.Fatalf("priming sweep = %v, %v", deleted, err)
	}

	r.clock.Advance(time.Hour + time.Nanosecond) // only subjA due
	before := r.store.ShardScans()
	deleted, err := r.engine.SweepExpired()
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 1 || deleted[0] != pdA {
		t.Fatalf("scoped sweep deleted %v, want [%s]", deleted, pdA)
	}
	after := r.store.ShardScans()
	shardA := r.store.ShardOf(subjA)
	if after[shardA] <= before[shardA] {
		t.Fatalf("due shard %d took no scan lock (before %d, after %d)", shardA, before[shardA], after[shardA])
	}
	for sh := range after {
		if uint32(sh) == shardA {
			continue
		}
		if after[sh] != before[sh] {
			t.Fatalf("untouched shard %d was scan-locked (%d -> %d); only shard %d had due records",
				sh, before[sh], after[sh], shardA)
		}
	}
	if got := r.countRecords(t, subjB); got != 1 {
		t.Fatalf("subjB records = %d, want 1", got)
	}
}
