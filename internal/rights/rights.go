// Package rights implements the data-subject rights on top of the rgpdOS
// components — the paper's §4 illustrations (right of access, right to be
// forgotten) plus the neighbouring rights its mechanisms directly enable
// (rectification, portability, consent withdrawal, restriction, and the
// TTL sweeper that enforces storage limitation).
//
// Every mutation is routed through the Processing Store's built-in
// processings in maintenance mode: rights execution is itself a data
// processing, with a legal-obligation basis, executed by the DED, and
// recorded in the audit log. The engine adds the cross-record logic the
// builtins don't have: expanding a subject to all their PD, and following
// the copy ledger so erasure and consent changes reach every copy
// (membrane consistency).
package rights

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/audit"
	"repro/internal/builtins"
	"repro/internal/dbfs"
	"repro/internal/ded"
	"repro/internal/membrane"
	"repro/internal/ps"
	"repro/internal/simclock"
)

// Engine executes data-subject rights. The cross-record rights — access
// export, subject-wide erasure and consent changes, the TTL sweep — fan
// their per-record work out over a worker pool (the DED executor for
// mutations, a local pool for read-side scans), sized by SetWorkers or, by
// default, the Processing Store's InvokeBatch pool. Reports stay
// deterministic: results are index-addressed and sorted exactly as the
// serial engine produced them.
type Engine struct {
	ps    *ps.Store
	d     *ded.DED
	log   *audit.Log
	clock simclock.Clock

	mu      sync.Mutex
	workers int // 0 = follow ps.DefaultWorkers

	// due is the retention due-index (see sweeper.go), fed by the DBFS
	// expiry notifier; sweepMu serializes whole sweep passes (manual
	// SweepExpired calls and background Sweeper passes alike); swept
	// records whether the priming full pass has completed.
	due     *dueIndex
	sweepMu sync.Mutex
	swept   bool
	// sweepScanHook, when set (tests only), runs between a sweep pass's
	// scan and delete phases.
	sweepScanHook func()
}

// New wires a rights engine. It registers the engine's retention
// due-index as the store's expiry notifier, so every membrane written
// from here on feeds the deadline-aware sweeper.
func New(p *ps.Store, d *ded.DED, log *audit.Log, clock simclock.Clock) *Engine {
	if clock == nil {
		clock = simclock.Real{}
	}
	store := d.Store()
	e := &Engine{ps: p, d: d, log: log, clock: clock,
		due: newDueIndex(store.NumShards(), store.ShardOf)}
	store.SetExpiryNotifier(e.due.note)
	return e
}

// SetWorkers overrides the per-record fan-out width of the cross-record
// rights. Zero (the default) follows the Processing Store's pool size; one
// restores the serial PR-2 behaviour (the SC3 ablation baseline).
//
// Deprecated: when the engine is owned by a core.System, set the width
// through System.ApplyTuning (core.Tuning.RightsWorkers). Direct use
// remains correct for standalone engines and ablation tests.
func (e *Engine) SetWorkers(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n < 0 {
		n = 0
	}
	e.workers = n
}

// Workers reports the configured override (0 = follow the Processing
// Store's pool size).
func (e *Engine) Workers() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.workers
}

// workerCount resolves the effective fan-out width.
func (e *Engine) workerCount() int {
	e.mu.Lock()
	w := e.workers
	e.mu.Unlock()
	if w > 0 {
		return w
	}
	if w := e.ps.DefaultWorkers(); w > 0 {
		return w
	}
	return 1
}

// ForEachIndexed runs fn(i) for every i in [0, n) on up to workers
// goroutines and returns the error of the LOWEST failing index — the same
// error a serial loop would have surfaced first, so parallel rights keep
// deterministic failure reporting. Exported because it is the merge
// contract of every fanned-out rights op: the cluster router uses the
// same helper for its per-node fan-outs, so a multi-node sweep or batch
// access reports exactly the error a single-node engine would have.
func ForEachIndexed(n, workers int, fn func(int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RecordExport is one PD record in a subject-access report: the data with
// meaningful keys (the §4 point about exploitable structure) plus the
// membrane metadata the subject is entitled to see.
type RecordExport struct {
	PDID        string            `json:"pdid"`
	Type        string            `json:"type"`
	Fields      map[string]any    `json:"fields,omitempty"`
	Origin      string            `json:"origin"`
	Sensitivity string            `json:"sensitivity"`
	CreatedAt   time.Time         `json:"created_at"`
	TTL         string            `json:"ttl,omitempty"`
	Consents    map[string]string `json:"consents"`
	Erased      bool              `json:"erased,omitempty"`
	Restricted  bool              `json:"restricted,omitempty"`
	CopyOf      string            `json:"copy_of,omitempty"`
}

// ProcessingEntry is one row of the per-subject processing history.
type ProcessingEntry struct {
	Time    time.Time `json:"time"`
	Kind    string    `json:"kind"`
	Purpose string    `json:"purpose,omitempty"`
	PDID    string    `json:"pdid,omitempty"`
	Outcome string    `json:"outcome"`
	Detail  string    `json:"detail,omitempty"`
}

// AccessReport is the Art. 15 subject-access answer: all the subject's PD in
// structured, machine-readable form, with the processing history "organized
// so that it can give information about executed processings for each piece
// of PD" (§4).
type AccessReport struct {
	SubjectID   string                       `json:"subject"`
	GeneratedAt time.Time                    `json:"generated_at"`
	Data        map[string][]RecordExport    `json:"data"`
	Processings []ProcessingEntry            `json:"processings"`
	PerPD       map[string][]ProcessingEntry `json:"per_pd"`
}

// Access builds the subject-access report. Erased records appear with their
// membrane metadata but no field values (the operator cannot read them).
//
// The membranes are fetched as one DBFS batch (one shard-lock pass, served
// by the membrane cache), the per-record exports — including the decrypt in
// GetRecord — are built on the worker pool, and the per-PD processing
// history is one bulk audit query instead of a log-lock round-trip per
// record. The report is byte-identical to the serial engine's: exports are
// index-addressed and sorted by pdid within each type.
func (e *Engine) Access(subjectID string) (*AccessReport, error) {
	return e.access(subjectID, e.workerCount())
}

// AccessBatch builds access reports for many subjects at once, fanning the
// subjects out over the worker pool — the portal-under-load shape, where
// per-subject parallelism pays best: distinct subjects live on distinct
// DBFS shards (and, with FSInstances > 1, distinct filesystems), so their
// record reads overlap end to end. Reports keep the order of the requested
// subjects; each report is built serially inside its worker, so the pool is
// not oversubscribed.
func (e *Engine) AccessBatch(subjectIDs []string) ([]*AccessReport, error) {
	out := make([]*AccessReport, len(subjectIDs))
	err := ForEachIndexed(len(subjectIDs), e.workerCount(), func(i int) error {
		rep, err := e.access(subjectIDs[i], 1)
		if err != nil {
			return err
		}
		out[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (e *Engine) access(subjectID string, workers int) (*AccessReport, error) {
	store, tok := e.d.Store(), e.d.Token()
	pdids, err := store.ListBySubject(tok, subjectID)
	if err != nil {
		return nil, fmt.Errorf("rights: access %s: %w", subjectID, err)
	}
	report := &AccessReport{
		SubjectID:   subjectID,
		GeneratedAt: e.clock.Now(),
		Data:        make(map[string][]RecordExport),
		PerPD:       make(map[string][]ProcessingEntry),
	}
	ms, err := store.GetMembranes(tok, pdids)
	if err != nil {
		return nil, fmt.Errorf("rights: access %s: %w", subjectID, err)
	}
	exps := make([]RecordExport, len(pdids))
	err = ForEachIndexed(len(pdids), workers, func(i int) error {
		pdid, m := pdids[i], ms[i]
		exp := RecordExport{
			PDID:        pdid,
			Type:        m.TypeName,
			Origin:      m.Origin.String(),
			Sensitivity: m.Sensitivity.String(),
			CreatedAt:   m.CreatedAt,
			Consents:    make(map[string]string, len(m.Consents)),
			Erased:      m.Erased,
			Restricted:  m.Restricted,
			CopyOf:      m.CopyOf,
		}
		if m.TTL > 0 {
			exp.TTL = m.TTL.String()
		}
		for p, g := range m.Consents {
			exp.Consents[p] = g.String()
		}
		if !m.Erased {
			rec, err := store.GetRecord(tok, pdid)
			if err != nil {
				return fmt.Errorf("rights: access %s: %w", pdid, err)
			}
			exp.Fields = make(map[string]any, len(rec))
			for name, v := range rec {
				exp.Fields[name] = v.Export()
			}
		}
		exps[i] = exp
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, exp := range exps {
		report.Data[exp.Type] = append(report.Data[exp.Type], exp)
	}
	for pdid, entries := range e.log.ByPDs(pdids) {
		for _, entry := range entries {
			report.PerPD[pdid] = append(report.PerPD[pdid], toEntry(entry))
		}
	}
	for ty := range report.Data {
		recs := report.Data[ty]
		sort.Slice(recs, func(i, j int) bool { return recs[i].PDID < recs[j].PDID })
	}
	for _, entry := range e.log.BySubject(subjectID) {
		report.Processings = append(report.Processings, toEntry(entry))
	}
	e.log.Append(audit.KindExport, "", "", subjectID, "ok", "subject access report")
	return report, nil
}

func toEntry(entry audit.Entry) ProcessingEntry {
	return ProcessingEntry{
		Time:    entry.Time,
		Kind:    entry.Kind.String(),
		Purpose: entry.Purpose,
		PDID:    entry.PDID,
		Outcome: entry.Outcome,
		Detail:  entry.Detail,
	}
}

// ExportJSON renders the report as indented JSON — "structured and
// machine-readable", with the field names as keys.
func ExportJSON(r *AccessReport) ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("rights: export: %w", err)
	}
	return b, nil
}

// Portability is the Art. 20 export: the data portion of the access report
// as JSON (machine-readable for transmission to another operator).
func (e *Engine) Portability(subjectID string) ([]byte, error) {
	report, err := e.Access(subjectID)
	if err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(report.Data, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("rights: portability: %w", err)
	}
	return b, nil
}

// EraseReport summarizes an erasure request.
type EraseReport struct {
	SubjectID string
	// Erased lists the pdids crypto-shredded (copies included).
	Erased []string
}

// Erase executes the right to be forgotten for every PD of the subject,
// following the copy ledger so copies are erased with their originals. The
// family-expanded targets run as one ps.InvokeBatch on the DED executor
// pool — crypto-erasure of a subject's records is per-record independent
// (erasure is idempotent and distinct records never share a data key).
func (e *Engine) Erase(subjectID string) (*EraseReport, error) {
	store, tok := e.d.Store(), e.d.Token()
	pdids, err := store.ListBySubject(tok, subjectID)
	if err != nil {
		return nil, fmt.Errorf("rights: erase %s: %w", subjectID, err)
	}
	targets := e.expandFamilies(pdids)
	reqs := make([]ps.InvokeRequest, len(targets))
	for i, member := range targets {
		reqs[i] = ps.InvokeRequest{
			Processing:  builtins.EraseName,
			PDRef:       member,
			Maintenance: true,
		}
	}
	for i, item := range e.ps.InvokeBatch(reqs, e.workerCount()) {
		if item.Err != nil {
			return nil, fmt.Errorf("rights: erase %s: %w", targets[i], item.Err)
		}
	}
	report := &EraseReport{SubjectID: subjectID, Erased: targets}
	sort.Strings(report.Erased)
	return report, nil
}

// expandFamilies maps pdids through the copy ledger to the deduplicated
// union of their families, in first-seen order.
func (e *Engine) expandFamilies(pdids []string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, pdid := range pdids {
		for _, member := range e.d.Ledger().Family(pdid) {
			if seen[member] {
				continue
			}
			seen[member] = true
			out = append(out, member)
		}
	}
	return out
}

// EraseRecord erases one record and every copy in its family.
func (e *Engine) EraseRecord(pdid string) ([]string, error) {
	var erased []string
	for _, member := range e.d.Ledger().Family(pdid) {
		if _, err := e.ps.Invoke(ps.InvokeRequest{
			Processing:  builtins.EraseName,
			PDRef:       member,
			Maintenance: true,
		}); err != nil {
			return erased, fmt.Errorf("rights: erase %s: %w", member, err)
		}
		erased = append(erased, member)
	}
	sort.Strings(erased)
	return erased, nil
}

// Rectify replaces fields of one record (Art. 16).
func (e *Engine) Rectify(pdid string, fields dbfs.Record) error {
	_, err := e.ps.Invoke(ps.InvokeRequest{
		Processing:  builtins.UpdateName,
		PDRef:       pdid,
		Params:      map[string]any{builtins.ParamFields: fields},
		Maintenance: true,
	})
	return err
}

// SetConsent records a consent grant for one purpose on every PD of the
// subject (and every copy).
func (e *Engine) SetConsent(subjectID, purposeName string, g membrane.Grant) error {
	return e.consentAll(subjectID, purposeName, map[string]any{
		builtins.ParamPurpose: purposeName,
		builtins.ParamGrant:   g,
	})
}

// WithdrawConsent revokes a purpose's grant on every PD of the subject (and
// every copy) — Art. 7(3).
func (e *Engine) WithdrawConsent(subjectID, purposeName string) error {
	return e.consentAll(subjectID, purposeName, map[string]any{
		builtins.ParamPurpose: purposeName,
	})
}

// consentAll applies one consent mutation to every PD of the subject (and
// every copy) as a batch on the DED executor pool. Records are disjoint, so
// the per-record atomic read-modify-write (dbfs.MutateMembrane) is the only
// ordering that matters and the fan-out preserves it.
func (e *Engine) consentAll(subjectID, purposeName string, params map[string]any) error {
	store, tok := e.d.Store(), e.d.Token()
	pdids, err := store.ListBySubject(tok, subjectID)
	if err != nil {
		return fmt.Errorf("rights: consent %s: %w", subjectID, err)
	}
	targets := e.expandFamilies(pdids)
	reqs := make([]ps.InvokeRequest, len(targets))
	for i, member := range targets {
		reqs[i] = ps.InvokeRequest{
			Processing:  builtins.ConsentName,
			PDRef:       member,
			Params:      params,
			Maintenance: true,
		}
	}
	for i, item := range e.ps.InvokeBatch(reqs, e.workerCount()) {
		if item.Err != nil {
			return fmt.Errorf("rights: consent %s on %s: %w", purposeName, targets[i], item.Err)
		}
	}
	return nil
}

// Restrict toggles the Art. 18 restriction mark on one record.
func (e *Engine) Restrict(pdid string, restricted bool) error {
	_, err := e.ps.Invoke(ps.InvokeRequest{
		Processing:  builtins.RestrictName,
		PDRef:       pdid,
		Params:      map[string]any{builtins.ParamRestricted: restricted},
		Maintenance: true,
	})
	return err
}

// SweepExpired physically deletes every record whose TTL elapsed — the
// storage-limitation duty ("the time to live ... can be used to implement
// the right to be forgotten", §2). It returns the deleted pdids, sorted.
//
// Since PR 4 the sweep is deadline-aware: the first call is a priming
// pass that scans every subject and seeds the retention due-index; later
// calls are scoped — they consult the index and scan only subjects with a
// deadline actually due, so shards with no due records take no shard lock
// (see sweeper.go, and StartSweeper for the background ticker form). The
// scan fans out over the worker pool, the expired records are deleted as
// one maintenance ps.InvokeBatch on the DED executor, and on a delete
// failure the successfully deleted pdids are still returned alongside the
// first error while the failed record's deadline is re-armed for the next
// pass.
func (e *Engine) SweepExpired() ([]string, error) {
	deleted, _, err := e.sweepOnce()
	return deleted, err
}
