// Package rights implements the data-subject rights on top of the rgpdOS
// components — the paper's §4 illustrations (right of access, right to be
// forgotten) plus the neighbouring rights its mechanisms directly enable
// (rectification, portability, consent withdrawal, restriction, and the
// TTL sweeper that enforces storage limitation).
//
// Every mutation is routed through the Processing Store's built-in
// processings in maintenance mode: rights execution is itself a data
// processing, with a legal-obligation basis, executed by the DED, and
// recorded in the audit log. The engine adds the cross-record logic the
// builtins don't have: expanding a subject to all their PD, and following
// the copy ledger so erasure and consent changes reach every copy
// (membrane consistency).
package rights

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/audit"
	"repro/internal/builtins"
	"repro/internal/dbfs"
	"repro/internal/ded"
	"repro/internal/membrane"
	"repro/internal/ps"
	"repro/internal/simclock"
)

// Engine executes data-subject rights.
type Engine struct {
	ps    *ps.Store
	d     *ded.DED
	log   *audit.Log
	clock simclock.Clock
}

// New wires a rights engine.
func New(p *ps.Store, d *ded.DED, log *audit.Log, clock simclock.Clock) *Engine {
	if clock == nil {
		clock = simclock.Real{}
	}
	return &Engine{ps: p, d: d, log: log, clock: clock}
}

// RecordExport is one PD record in a subject-access report: the data with
// meaningful keys (the §4 point about exploitable structure) plus the
// membrane metadata the subject is entitled to see.
type RecordExport struct {
	PDID        string            `json:"pdid"`
	Type        string            `json:"type"`
	Fields      map[string]any    `json:"fields,omitempty"`
	Origin      string            `json:"origin"`
	Sensitivity string            `json:"sensitivity"`
	CreatedAt   time.Time         `json:"created_at"`
	TTL         string            `json:"ttl,omitempty"`
	Consents    map[string]string `json:"consents"`
	Erased      bool              `json:"erased,omitempty"`
	Restricted  bool              `json:"restricted,omitempty"`
	CopyOf      string            `json:"copy_of,omitempty"`
}

// ProcessingEntry is one row of the per-subject processing history.
type ProcessingEntry struct {
	Time    time.Time `json:"time"`
	Kind    string    `json:"kind"`
	Purpose string    `json:"purpose,omitempty"`
	PDID    string    `json:"pdid,omitempty"`
	Outcome string    `json:"outcome"`
	Detail  string    `json:"detail,omitempty"`
}

// AccessReport is the Art. 15 subject-access answer: all the subject's PD in
// structured, machine-readable form, with the processing history "organized
// so that it can give information about executed processings for each piece
// of PD" (§4).
type AccessReport struct {
	SubjectID   string                       `json:"subject"`
	GeneratedAt time.Time                    `json:"generated_at"`
	Data        map[string][]RecordExport    `json:"data"`
	Processings []ProcessingEntry            `json:"processings"`
	PerPD       map[string][]ProcessingEntry `json:"per_pd"`
}

// Access builds the subject-access report. Erased records appear with their
// membrane metadata but no field values (the operator cannot read them).
func (e *Engine) Access(subjectID string) (*AccessReport, error) {
	store, tok := e.d.Store(), e.d.Token()
	pdids, err := store.ListBySubject(tok, subjectID)
	if err != nil {
		return nil, fmt.Errorf("rights: access %s: %w", subjectID, err)
	}
	report := &AccessReport{
		SubjectID:   subjectID,
		GeneratedAt: e.clock.Now(),
		Data:        make(map[string][]RecordExport),
		PerPD:       make(map[string][]ProcessingEntry),
	}
	for _, pdid := range pdids {
		m, err := store.GetMembrane(tok, pdid)
		if err != nil {
			return nil, fmt.Errorf("rights: access %s: %w", pdid, err)
		}
		exp := RecordExport{
			PDID:        pdid,
			Type:        m.TypeName,
			Origin:      m.Origin.String(),
			Sensitivity: m.Sensitivity.String(),
			CreatedAt:   m.CreatedAt,
			Consents:    make(map[string]string, len(m.Consents)),
			Erased:      m.Erased,
			Restricted:  m.Restricted,
			CopyOf:      m.CopyOf,
		}
		if m.TTL > 0 {
			exp.TTL = m.TTL.String()
		}
		for p, g := range m.Consents {
			exp.Consents[p] = g.String()
		}
		if !m.Erased {
			rec, err := store.GetRecord(tok, pdid)
			if err != nil {
				return nil, fmt.Errorf("rights: access %s: %w", pdid, err)
			}
			exp.Fields = make(map[string]any, len(rec))
			for name, v := range rec {
				exp.Fields[name] = v.Export()
			}
		}
		report.Data[m.TypeName] = append(report.Data[m.TypeName], exp)
		for _, entry := range e.log.ByPD(pdid) {
			report.PerPD[pdid] = append(report.PerPD[pdid], toEntry(entry))
		}
	}
	for ty := range report.Data {
		recs := report.Data[ty]
		sort.Slice(recs, func(i, j int) bool { return recs[i].PDID < recs[j].PDID })
	}
	for _, entry := range e.log.BySubject(subjectID) {
		report.Processings = append(report.Processings, toEntry(entry))
	}
	e.log.Append(audit.KindExport, "", "", subjectID, "ok", "subject access report")
	return report, nil
}

func toEntry(entry audit.Entry) ProcessingEntry {
	return ProcessingEntry{
		Time:    entry.Time,
		Kind:    entry.Kind.String(),
		Purpose: entry.Purpose,
		PDID:    entry.PDID,
		Outcome: entry.Outcome,
		Detail:  entry.Detail,
	}
}

// ExportJSON renders the report as indented JSON — "structured and
// machine-readable", with the field names as keys.
func ExportJSON(r *AccessReport) ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("rights: export: %w", err)
	}
	return b, nil
}

// Portability is the Art. 20 export: the data portion of the access report
// as JSON (machine-readable for transmission to another operator).
func (e *Engine) Portability(subjectID string) ([]byte, error) {
	report, err := e.Access(subjectID)
	if err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(report.Data, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("rights: portability: %w", err)
	}
	return b, nil
}

// EraseReport summarizes an erasure request.
type EraseReport struct {
	SubjectID string
	// Erased lists the pdids crypto-shredded (copies included).
	Erased []string
}

// Erase executes the right to be forgotten for every PD of the subject,
// following the copy ledger so copies are erased with their originals.
func (e *Engine) Erase(subjectID string) (*EraseReport, error) {
	store, tok := e.d.Store(), e.d.Token()
	pdids, err := store.ListBySubject(tok, subjectID)
	if err != nil {
		return nil, fmt.Errorf("rights: erase %s: %w", subjectID, err)
	}
	report := &EraseReport{SubjectID: subjectID}
	seen := make(map[string]bool)
	for _, pdid := range pdids {
		for _, member := range e.d.Ledger().Family(pdid) {
			if seen[member] {
				continue
			}
			seen[member] = true
			if _, err := e.ps.Invoke(ps.InvokeRequest{
				Processing:  builtins.EraseName,
				PDRef:       member,
				Maintenance: true,
			}); err != nil {
				return nil, fmt.Errorf("rights: erase %s: %w", member, err)
			}
			report.Erased = append(report.Erased, member)
		}
	}
	sort.Strings(report.Erased)
	return report, nil
}

// EraseRecord erases one record and every copy in its family.
func (e *Engine) EraseRecord(pdid string) ([]string, error) {
	var erased []string
	for _, member := range e.d.Ledger().Family(pdid) {
		if _, err := e.ps.Invoke(ps.InvokeRequest{
			Processing:  builtins.EraseName,
			PDRef:       member,
			Maintenance: true,
		}); err != nil {
			return erased, fmt.Errorf("rights: erase %s: %w", member, err)
		}
		erased = append(erased, member)
	}
	sort.Strings(erased)
	return erased, nil
}

// Rectify replaces fields of one record (Art. 16).
func (e *Engine) Rectify(pdid string, fields dbfs.Record) error {
	_, err := e.ps.Invoke(ps.InvokeRequest{
		Processing:  builtins.UpdateName,
		PDRef:       pdid,
		Params:      map[string]any{builtins.ParamFields: fields},
		Maintenance: true,
	})
	return err
}

// SetConsent records a consent grant for one purpose on every PD of the
// subject (and every copy).
func (e *Engine) SetConsent(subjectID, purposeName string, g membrane.Grant) error {
	return e.consentAll(subjectID, purposeName, map[string]any{
		builtins.ParamPurpose: purposeName,
		builtins.ParamGrant:   g,
	})
}

// WithdrawConsent revokes a purpose's grant on every PD of the subject (and
// every copy) — Art. 7(3).
func (e *Engine) WithdrawConsent(subjectID, purposeName string) error {
	return e.consentAll(subjectID, purposeName, map[string]any{
		builtins.ParamPurpose: purposeName,
	})
}

func (e *Engine) consentAll(subjectID, purposeName string, params map[string]any) error {
	store, tok := e.d.Store(), e.d.Token()
	pdids, err := store.ListBySubject(tok, subjectID)
	if err != nil {
		return fmt.Errorf("rights: consent %s: %w", subjectID, err)
	}
	seen := make(map[string]bool)
	for _, pdid := range pdids {
		for _, member := range e.d.Ledger().Family(pdid) {
			if seen[member] {
				continue
			}
			seen[member] = true
			if _, err := e.ps.Invoke(ps.InvokeRequest{
				Processing:  builtins.ConsentName,
				PDRef:       member,
				Params:      params,
				Maintenance: true,
			}); err != nil {
				return fmt.Errorf("rights: consent %s on %s: %w", purposeName, member, err)
			}
		}
	}
	return nil
}

// Restrict toggles the Art. 18 restriction mark on one record.
func (e *Engine) Restrict(pdid string, restricted bool) error {
	_, err := e.ps.Invoke(ps.InvokeRequest{
		Processing:  builtins.RestrictName,
		PDRef:       pdid,
		Params:      map[string]any{builtins.ParamRestricted: restricted},
		Maintenance: true,
	})
	return err
}

// SweepExpired walks every record and physically deletes those whose TTL
// elapsed — the storage-limitation duty ("the time to live ... can be used
// to implement the right to be forgotten", §2). It returns the deleted
// pdids.
func (e *Engine) SweepExpired() ([]string, error) {
	store, tok := e.d.Store(), e.d.Token()
	subjects, err := store.Subjects(tok)
	if err != nil {
		return nil, fmt.Errorf("rights: sweep: %w", err)
	}
	now := e.clock.Now()
	var deleted []string
	for _, subject := range subjects {
		pdids, err := store.ListBySubject(tok, subject)
		if err != nil {
			return deleted, err
		}
		for _, pdid := range pdids {
			m, err := store.GetMembrane(tok, pdid)
			if err != nil {
				return deleted, err
			}
			if !m.ExpiredAt(now) {
				continue
			}
			if _, err := e.ps.Invoke(ps.InvokeRequest{
				Processing:  builtins.DeleteName,
				PDRef:       pdid,
				Maintenance: true,
			}); err != nil {
				return deleted, fmt.Errorf("rights: sweep %s: %w", pdid, err)
			}
			e.d.Ledger().Forget(pdid)
			deleted = append(deleted, pdid)
		}
	}
	sort.Strings(deleted)
	return deleted, nil
}
