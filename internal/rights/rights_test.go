package rights

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/blockdev"
	"repro/internal/builtins"
	"repro/internal/cryptoshred"
	"repro/internal/dbfs"
	"repro/internal/ded"
	"repro/internal/inode"
	"repro/internal/lsm"
	"repro/internal/membrane"
	"repro/internal/ps"
	"repro/internal/purpose"
	"repro/internal/simclock"
)

// rig is a full rgpdOS stack for rights tests: DBFS + DED + PS with the
// builtins registered, plus the rights engine.
type rig struct {
	dev    *blockdev.Mem
	store  *dbfs.Store
	vault  *cryptoshred.Vault
	auth   *cryptoshred.Authority
	log    *audit.Log
	clock  *simclock.Sim
	d      *ded.DED
	ps     *ps.Store
	engine *Engine
	tok    *lsm.Token
}

func newRig(t *testing.T) *rig {
	t.Helper()
	dev := blockdev.MustMem(8192)
	clock := simclock.NewSim(simclock.Epoch)
	fs, err := inode.Format(dev, inode.Options{NInodes: 4096, JournalBlocks: 128, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	auth, err := cryptoshred.NewAuthority(1024)
	if err != nil {
		t.Fatal(err)
	}
	guard := lsm.NewGuard()
	vault := cryptoshred.NewVault(auth.PublicKey())
	store, err := dbfs.Create([]*inode.FS{fs}, guard, vault, clock)
	if err != nil {
		t.Fatal(err)
	}
	tok := guard.Mint("ded", lsm.CapDBFS)
	log := audit.NewLog(clock)
	d := ded.New(store, tok, log, membrane.NewLedger(), clock)
	p := ps.New(d, log, nil)
	if err := builtins.Register(p); err != nil {
		t.Fatal(err)
	}
	return &rig{
		dev: dev, store: store, vault: vault, auth: auth, log: log,
		clock: clock, d: d, ps: p, engine: New(p, d, log, clock), tok: tok,
	}
}

func (r *rig) seedUser(t *testing.T, subject, name string, yob int64) string {
	t.Helper()
	sch := &dbfs.Schema{
		Name: "user",
		Fields: []dbfs.Field{
			{Name: "name", Type: dbfs.TypeString},
			{Name: "year_of_birthdate", Type: dbfs.TypeInt},
		},
		Views: []dbfs.View{{Name: "v_ano", Fields: []string{"year_of_birthdate"}}},
		DefaultConsent: map[string]membrane.Grant{
			"purpose3": {Kind: membrane.GrantView, View: "v_ano"},
		},
		DefaultTTL: 365 * 24 * time.Hour,
	}
	if _, err := r.store.SchemaOf(r.tok, "user"); err != nil {
		if err := r.store.CreateType(r.tok, sch); err != nil {
			t.Fatal(err)
		}
	}
	pdid, err := r.store.Insert(r.tok, "user", subject, dbfs.Record{
		"name": dbfs.S(name), "year_of_birthdate": dbfs.I(yob),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pdid
}

func TestAccessReportStructure(t *testing.T) {
	r := newRig(t)
	pdid := r.seedUser(t, "chiraz", "Chiraz Benamor", 1990)

	// Run a processing so the history has an entry.
	decl := &purpose.Decl{Name: "purpose3", Description: "Compute the age",
		Basis: purpose.BasisConsent, Reads: []string{"user.year_of_birthdate"}}
	impl := &ded.Func{Name: "compute_age", Purpose: "purpose3",
		DeclaredReads: []string{"user.year_of_birthdate"},
		Fn: func(c *ded.Ctx) (ded.Output, error) {
			v, err := c.Field("year_of_birthdate")
			if err != nil {
				return ded.Output{}, err
			}
			return ded.Output{NonPD: 2023 - v.I}, nil
		}}
	if err := r.ps.Register(decl, impl, false); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ps.Invoke(ps.InvokeRequest{Processing: "purpose3", TypeName: "user"}); err != nil {
		t.Fatal(err)
	}

	report, err := r.engine.Access("chiraz")
	if err != nil {
		t.Fatalf("Access: %v", err)
	}
	users := report.Data["user"]
	if len(users) != 1 {
		t.Fatalf("Data = %+v", report.Data)
	}
	// The §4 point: keys are the meaningful field names, not opaque pairs.
	if users[0].Fields["name"] != "Chiraz Benamor" {
		t.Fatalf("Fields = %v", users[0].Fields)
	}
	if users[0].Fields["year_of_birthdate"] != int64(1990) {
		t.Fatalf("Fields = %v", users[0].Fields)
	}
	if users[0].Consents["purpose3"] != "v_ano" {
		t.Fatalf("Consents = %v", users[0].Consents)
	}
	// Per-PD processing history present.
	if len(report.PerPD[pdid]) == 0 {
		t.Fatal("no per-PD processing history")
	}
	found := false
	for _, e := range report.PerPD[pdid] {
		if e.Kind == "processing" && e.Purpose == "purpose3" && e.Outcome == "ok" {
			found = true
		}
	}
	if !found {
		t.Fatalf("PerPD = %+v", report.PerPD[pdid])
	}

	// Machine-readable: valid JSON whose keys make sense.
	raw, err := ExportJSON(report)
	if err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("export not valid JSON: %v", err)
	}
	s := string(raw)
	for _, key := range []string{`"subject"`, `"year_of_birthdate"`, `"consents"`, `"per_pd"`} {
		if !strings.Contains(s, key) {
			t.Fatalf("export missing key %s", key)
		}
	}
}

func TestEraseSubjectEndToEnd(t *testing.T) {
	r := newRig(t)
	pdid := r.seedUser(t, "alice", "Alice Martin", 1985)

	// The operator loses access; raw media holds no plaintext; authority
	// can still recover via escrow — the complete §4 model.
	report, err := r.engine.Erase("alice")
	if err != nil {
		t.Fatalf("Erase: %v", err)
	}
	if len(report.Erased) != 1 || report.Erased[0] != pdid {
		t.Fatalf("report = %+v", report)
	}
	if _, err := r.store.GetRecord(r.tok, pdid); err == nil {
		t.Fatal("operator can still read erased PD")
	}
	if hits := blockdev.FindResidue(r.dev, []byte("Alice Martin")); len(hits) != 0 {
		t.Fatalf("plaintext residue at %v", hits)
	}
	m, err := r.store.GetMembrane(r.tok, pdid)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Erased || m.EscrowRef == "" {
		t.Fatalf("membrane = %+v", m)
	}
	escrow, err := r.vault.Escrow(m.EscrowRef)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := r.store.RawCiphertext(r.tok, pdid)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := r.auth.Recover(escrow, ct)
	if err != nil {
		t.Fatalf("authority Recover: %v", err)
	}
	if !strings.Contains(string(pt), "Alice Martin") {
		t.Fatal("authority recovered wrong data")
	}

	// The erased record still shows in the access report, fields omitted.
	acc, err := r.engine.Access("alice")
	if err != nil {
		t.Fatal(err)
	}
	if got := acc.Data["user"][0]; !got.Erased || got.Fields != nil {
		t.Fatalf("post-erasure export = %+v", got)
	}
}

func TestEraseFollowsCopies(t *testing.T) {
	r := newRig(t)
	pdid := r.seedUser(t, "bob", "Bob Stone", 1970)
	// Copy via the builtin.
	res, err := r.ps.Invoke(ps.InvokeRequest{
		Processing: builtins.CopyName, PDRef: pdid, Maintenance: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PDRefs) != 1 {
		t.Fatalf("copy refs = %v", res.PDRefs)
	}
	copyID := res.PDRefs[0]

	report, err := r.engine.Erase("bob")
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Erased) != 2 {
		t.Fatalf("Erased = %v, want original+copy", report.Erased)
	}
	for _, id := range []string{pdid, copyID} {
		m, err := r.store.GetMembrane(r.tok, id)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Erased {
			t.Fatalf("%s not erased", id)
		}
	}
}

func TestRectify(t *testing.T) {
	r := newRig(t)
	pdid := r.seedUser(t, "carol", "Carole", 1991)
	if err := r.engine.Rectify(pdid, dbfs.Record{"name": dbfs.S("Carole Verified")}); err != nil {
		t.Fatalf("Rectify: %v", err)
	}
	rec, err := r.store.GetRecord(r.tok, pdid)
	if err != nil {
		t.Fatal(err)
	}
	if rec["name"].S != "Carole Verified" || rec["year_of_birthdate"].I != 1991 {
		t.Fatalf("rec = %v (partial update must keep other fields)", rec)
	}
}

func TestConsentPropagationToCopies(t *testing.T) {
	r := newRig(t)
	pdid := r.seedUser(t, "dora", "Dora", 1969)
	res, err := r.ps.Invoke(ps.InvokeRequest{Processing: builtins.CopyName, PDRef: pdid, Maintenance: true})
	if err != nil {
		t.Fatal(err)
	}
	copyID := res.PDRefs[0]

	if err := r.engine.WithdrawConsent("dora", "purpose3"); err != nil {
		t.Fatalf("WithdrawConsent: %v", err)
	}
	for _, id := range []string{pdid, copyID} {
		m, err := r.store.GetMembrane(r.tok, id)
		if err != nil {
			t.Fatal(err)
		}
		if g := m.Consents["purpose3"]; g.Kind != membrane.GrantNone {
			t.Fatalf("%s consent = %+v (not propagated)", id, g)
		}
	}
	// Re-grant.
	if err := r.engine.SetConsent("dora", "purpose3", membrane.Grant{Kind: membrane.GrantAll}); err != nil {
		t.Fatal(err)
	}
	m, _ := r.store.GetMembrane(r.tok, copyID)
	if g := m.Consents["purpose3"]; g.Kind != membrane.GrantAll {
		t.Fatalf("re-grant not propagated: %+v", g)
	}
}

func TestRestrict(t *testing.T) {
	r := newRig(t)
	pdid := r.seedUser(t, "erin", "Erin", 2001)
	if err := r.engine.Restrict(pdid, true); err != nil {
		t.Fatal(err)
	}
	m, err := r.store.GetMembrane(r.tok, pdid)
	if err != nil || !m.Restricted {
		t.Fatalf("membrane = %+v, %v", m, err)
	}
	if err := r.engine.Restrict(pdid, false); err != nil {
		t.Fatal(err)
	}
	m, _ = r.store.GetMembrane(r.tok, pdid)
	if m.Restricted {
		t.Fatal("restriction not lifted")
	}
}

func TestSweepExpired(t *testing.T) {
	r := newRig(t)
	oldPD := r.seedUser(t, "frank", "Frank", 1950)
	r.clock.Advance(200 * 24 * time.Hour)
	freshPD := r.seedUser(t, "grace", "Grace", 1999)
	// frank's record: 200 days old (TTL 1Y) — not expired yet.
	deleted, err := r.engine.SweepExpired()
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 0 {
		t.Fatalf("premature sweep: %v", deleted)
	}
	// +200 more days: frank expired (400d), grace not (200d).
	r.clock.Advance(200 * 24 * time.Hour)
	deleted, err = r.engine.SweepExpired()
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 1 || deleted[0] != oldPD {
		t.Fatalf("sweep = %v, want [%s]", deleted, oldPD)
	}
	if _, err := r.store.GetRecord(r.tok, oldPD); !errors.Is(err, dbfs.ErrNoRecord) {
		t.Fatalf("expired record still present: %v", err)
	}
	if _, err := r.store.GetRecord(r.tok, freshPD); err != nil {
		t.Fatalf("fresh record deleted: %v", err)
	}
}

func TestPortability(t *testing.T) {
	r := newRig(t)
	r.seedUser(t, "hana", "Hana", 1988)
	raw, err := r.engine.Portability("hana")
	if err != nil {
		t.Fatal(err)
	}
	var data map[string][]RecordExport
	if err := json.Unmarshal(raw, &data); err != nil {
		t.Fatalf("portability export not JSON: %v", err)
	}
	if len(data["user"]) != 1 || data["user"][0].Fields["name"] != "Hana" {
		t.Fatalf("portability data = %+v", data)
	}
}

func TestBuiltinBadParams(t *testing.T) {
	r := newRig(t)
	pdid := r.seedUser(t, "ivy", "Ivy", 1993)
	// update without fields param
	_, err := r.ps.Invoke(ps.InvokeRequest{Processing: builtins.UpdateName, PDRef: pdid, Maintenance: true})
	if !errors.Is(err, builtins.ErrBadParams) {
		t.Fatalf("update no params err = %v", err)
	}
	// consent without purpose
	_, err = r.ps.Invoke(ps.InvokeRequest{Processing: builtins.ConsentName, PDRef: pdid, Maintenance: true})
	if !errors.Is(err, builtins.ErrBadParams) {
		t.Fatalf("consent no params err = %v", err)
	}
	// restrict with wrong type
	_, err = r.ps.Invoke(ps.InvokeRequest{Processing: builtins.RestrictName, PDRef: pdid,
		Params: map[string]any{builtins.ParamRestricted: "yes"}, Maintenance: true})
	if !errors.Is(err, builtins.ErrBadParams) {
		t.Fatalf("restrict bad type err = %v", err)
	}
}

func TestAuditTrailSurvivesRights(t *testing.T) {
	r := newRig(t)
	pdid := r.seedUser(t, "jack", "Jack", 1977)
	if err := r.engine.Rectify(pdid, dbfs.Record{"name": dbfs.S("Jacques")}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.engine.Erase("jack"); err != nil {
		t.Fatal(err)
	}
	if err := r.log.Verify(); err != nil {
		t.Fatalf("audit chain broken: %v", err)
	}
	kinds := r.log.CountByKind()
	if kinds[audit.KindErasure] == 0 || kinds[audit.KindProcessing] == 0 {
		t.Fatalf("kinds = %v", kinds)
	}
}

// TestParallelRightsMatchSerial runs the cross-record rights at several
// worker widths and checks every report is identical to the serial
// engine's: the fan-out must not change what a subject receives, erases or
// sweeps — only how fast.
func TestParallelRightsMatchSerial(t *testing.T) {
	subjects := []string{"p-ada", "p-bea", "p-cyd", "p-dee", "p-eli"}
	seed := func(t *testing.T) *rig {
		r := newRig(t)
		for i, subject := range subjects {
			for j := 0; j < 3; j++ {
				r.seedUser(t, subject, subject+"-rec", int64(1960+i*3+j))
			}
		}
		return r
	}

	// Access: serial data sections are the reference.
	serial := seed(t)
	serial.engine.SetWorkers(1)
	wantData := make([]string, len(subjects))
	for i, subject := range subjects {
		rep, err := serial.engine.Access(subject)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(rep.Data)
		if err != nil {
			t.Fatal(err)
		}
		wantData[i] = string(raw)
	}
	par := seed(t)
	par.engine.SetWorkers(4)
	reps, err := par.engine.AccessBatch(subjects)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(subjects) {
		t.Fatalf("AccessBatch returned %d reports, want %d", len(reps), len(subjects))
	}
	for i, rep := range reps {
		if rep.SubjectID != subjects[i] {
			t.Fatalf("report %d is for %s, want %s", i, rep.SubjectID, subjects[i])
		}
		raw, err := json.Marshal(rep.Data)
		if err != nil {
			t.Fatal(err)
		}
		if string(raw) != wantData[i] {
			t.Errorf("parallel access data for %s diverged:\n got %s\nwant %s", subjects[i], raw, wantData[i])
		}
	}

	// Erase: parallel erasure tombstones exactly the subject's records.
	rep, err := par.engine.Erase(subjects[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Erased) != 3 {
		t.Fatalf("Erased = %v, want 3 pdids", rep.Erased)
	}
	for _, pdid := range rep.Erased {
		m, err := par.store.GetMembrane(par.tok, pdid)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Erased {
			t.Errorf("%s not tombstoned", pdid)
		}
	}

	// Consent withdrawal fans out but must land on every record.
	if err := par.engine.WithdrawConsent(subjects[1], "purpose3"); err != nil {
		t.Fatal(err)
	}
	pdids, err := par.store.ListBySubject(par.tok, subjects[1])
	if err != nil {
		t.Fatal(err)
	}
	for _, pdid := range pdids {
		m, err := par.store.GetMembrane(par.tok, pdid)
		if err != nil {
			t.Fatal(err)
		}
		if g := m.Consents["purpose3"]; g.Kind != membrane.GrantNone {
			t.Errorf("%s purpose3 grant = %+v, want none", pdid, g)
		}
	}

	// Sweep: everything is expired after a year; both widths must agree.
	serial.clock.Advance(366 * 24 * time.Hour)
	par.clock.Advance(366 * 24 * time.Hour)
	wantSwept, err := serial.engine.SweepExpired()
	if err != nil {
		t.Fatal(err)
	}
	gotSwept, err := par.engine.SweepExpired()
	if err != nil {
		t.Fatal(err)
	}
	// The parallel rig already erased subjects[0]'s records (tombstones
	// still expire) — both sweeps must delete every seeded record.
	if len(wantSwept) != len(subjects)*3 || len(gotSwept) != len(wantSwept) {
		t.Fatalf("sweep sizes: serial %d, parallel %d, want %d", len(wantSwept), len(gotSwept), len(subjects)*3)
	}
	for i := range wantSwept {
		if wantSwept[i] != gotSwept[i] {
			t.Fatalf("sweep order diverged at %d: %s vs %s", i, wantSwept[i], gotSwept[i])
		}
	}
}

// TestAccessOverArchivedRecords pins cold-tier transparency at the rights
// layer: demoting a subject's records to the compressed archive changes
// nothing about what Access (GDPR Art. 15) returns, and Erase still kills
// every copy.
func TestAccessOverArchivedRecords(t *testing.T) {
	r := newRig(t)
	pdid := r.seedUser(t, "chiraz", "Chiraz Benamor", 1990)

	r.store.ConfigureColdTier(time.Hour)
	r.clock.Advance(2 * time.Hour)
	ps, err := r.store.RepackCold(r.tok, r.clock.Now())
	if err != nil {
		t.Fatalf("RepackCold: %v", err)
	}
	if ps.Demoted != 1 {
		t.Fatalf("PassStats = %+v, want the seeded record demoted", ps)
	}

	report, err := r.engine.Access("chiraz")
	if err != nil {
		t.Fatalf("Access over archived record: %v", err)
	}
	users := report.Data["user"]
	if len(users) != 1 || users[0].Fields["name"] != "Chiraz Benamor" {
		t.Fatalf("archived record missing from Access report: %+v", report.Data)
	}
	if st := r.store.Stats(); st.Promotions != 1 {
		t.Fatalf("Promotions = %d, want the Access read to promote once", st.Promotions)
	}

	// Erasure reaches the archived copy: the retained ciphertext no longer
	// decodes once the subject's keys are shredded.
	if _, err := r.engine.EraseRecord(pdid); err != nil {
		t.Fatalf("EraseRecord: %v", err)
	}
	parts, err := r.store.ColdRaw(r.tok, pdid)
	if err != nil {
		t.Fatalf("ColdRaw: %v", err)
	}
	if _, err := r.vault.Open(pdid, parts["data"]); !errors.Is(err, cryptoshred.ErrKeyDestroyed) {
		t.Fatalf("archived ciphertext still opens after erasure: %v", err)
	}
}
