// The deadline-aware retention sweeper. The paper's storage-limitation
// duty ("the time to live ... can be used to implement the right to be
// forgotten", §2) is a runtime property with deadlines: data expired at T
// must actually be erased near T, not whenever someone happens to call
// SweepExpired. Three pieces deliver that here:
//
//   - a due-index (dueIndex): per subject shard, the earliest known
//     retention deadline of every subject with TTL-carrying records. DBFS
//     feeds it through the expiry notifier on every membrane write, so the
//     index is maintained at the exact point a deadline enters the system.
//   - scoped sweeps: SweepExpired consults the index and scans only the
//     subjects that are actually due — shards with no due records take no
//     shard lock at all (dbfs.ShardScans proves it). The first sweep is a
//     full priming pass that scans everything and seeds exact deadlines.
//   - the Sweeper: a ticker-driven background loop that sleeps until the
//     earliest deadline (or one Interval, whichever is sooner), wakes on
//     deadline notifications, and fires scoped sweeps. It waits on
//     simclock.Waiter, so tests drive it deterministically: a record
//     expired at T is physically deleted by T+Interval — Interval is the
//     grace window — and with exact deadline wakeups usually right at T.
package rights

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/builtins"
	"repro/internal/ps"
	"repro/internal/simclock"
)

// dueIndex tracks, per subject shard, the earliest known retention
// deadline of each subject. Entries are conservative: they are never later
// than the subject's true earliest deadline (a stale-early entry costs one
// wasted scan, never a missed deadline). Notes arrive from the DBFS expiry
// notifier under the subject's shard write lock, so the per-shard mutexes
// here must stay leaf locks: the index never calls into the store.
type dueIndex struct {
	kickMu sync.Mutex
	kick   func() // sweeper wakeup, set while a Sweeper runs

	// shardOf and shards mirror the store's subject-shard geometry (count
	// and hash), fixed at construction — see newDueIndex.
	shardOf func(subjectID string) uint32
	shards  []dueShard
}

// newDueIndex builds an index with nshards shards routed by shardOf —
// always the owning store's geometry, so "shards with no due records take
// no shard lock" stays exact whatever shard count the store was mounted
// with.
func newDueIndex(nshards int, shardOf func(string) uint32) *dueIndex {
	return &dueIndex{shardOf: shardOf, shards: make([]dueShard, nshards)}
}

// dueShard is one shard's slice of the index.
type dueShard struct {
	mu sync.Mutex
	// subjects maps subject ID -> earliest known retention deadline.
	subjects map[string]time.Time
	// earliest caches the minimum of subjects (zero = none).
	earliest time.Time
	// scanning marks a sweep pass in flight over this shard; fresh
	// collects deadlines noted during the scan, so install never loses a
	// deadline that raced the scan.
	scanning bool
	fresh    map[string]time.Time
}

// dueScan is one shard's scan work within a sweep pass.
type dueScan struct {
	shard    uint32
	subjects []string
}

func (ix *dueIndex) setKick(fn func()) {
	ix.kickMu.Lock()
	ix.kick = fn
	ix.kickMu.Unlock()
}

func (ix *dueIndex) doKick() {
	ix.kickMu.Lock()
	fn := ix.kick
	ix.kickMu.Unlock()
	if fn != nil {
		fn()
	}
}

// note min-merges a subject's retention deadline — the DBFS expiry
// notifier lands here on every membrane write. When the shard's earliest
// deadline moves down, the sweeper is kicked so it can re-aim its sleep.
func (ix *dueIndex) note(subjectID string, expiry time.Time) {
	ix.noteDeadline(subjectID, expiry, true)
}

// rearm is note without the sweeper kick — used when a sweep pass
// re-arms a record whose delete failed. The deadline is necessarily in
// the past, so a kick would cancel the loop's Interval backoff and spin
// failing passes back to back; the re-armed record is retried on the
// next regular wakeup instead.
func (ix *dueIndex) rearm(subjectID string, expiry time.Time) {
	ix.noteDeadline(subjectID, expiry, false)
}

func (ix *dueIndex) noteDeadline(subjectID string, expiry time.Time, kick bool) {
	d := &ix.shards[ix.shardOf(subjectID)]
	d.mu.Lock()
	if d.scanning {
		if cur, ok := d.fresh[subjectID]; !ok || expiry.Before(cur) {
			if d.fresh == nil {
				d.fresh = make(map[string]time.Time)
			}
			d.fresh[subjectID] = expiry
		}
	}
	lowered := false
	if cur, ok := d.subjects[subjectID]; !ok || expiry.Before(cur) {
		if d.subjects == nil {
			d.subjects = make(map[string]time.Time)
		}
		d.subjects[subjectID] = expiry
		if d.earliest.IsZero() || expiry.Before(d.earliest) {
			d.earliest = expiry
			lowered = true
		}
	}
	d.mu.Unlock()
	if lowered && kick {
		ix.doKick()
	}
}

// earliestDeadline reports the minimum deadline across all shards.
func (ix *dueIndex) earliestDeadline() (time.Time, bool) {
	var min time.Time
	for i := range ix.shards {
		d := &ix.shards[i]
		d.mu.Lock()
		e := d.earliest
		d.mu.Unlock()
		if !e.IsZero() && (min.IsZero() || e.Before(min)) {
			min = e
		}
	}
	return min, !min.IsZero()
}

// recomputeEarliestLocked refreshes the cached shard minimum; caller holds
// d.mu.
func (d *dueShard) recomputeEarliestLocked() {
	var min time.Time
	for _, dl := range d.subjects {
		if min.IsZero() || dl.Before(min) {
			min = dl
		}
	}
	d.earliest = min
}

// beginDue collects the scan work for a scoped pass at instant now — per
// shard, the subjects whose deadline strictly precedes now (ExpiredAt is
// strict-after, so a deadline exactly at now has not expired yet) — and
// marks those shards scanning. Shards with nothing due are not touched.
func (ix *dueIndex) beginDue(now time.Time) []dueScan {
	var scans []dueScan
	for sh := range ix.shards {
		d := &ix.shards[sh]
		d.mu.Lock()
		if d.earliest.IsZero() || !d.earliest.Before(now) {
			d.mu.Unlock()
			continue
		}
		var subs []string
		for s, dl := range d.subjects {
			if dl.Before(now) {
				subs = append(subs, s)
			}
		}
		if len(subs) == 0 {
			// Defensive: a stale cached minimum; refresh it.
			d.recomputeEarliestLocked()
			d.mu.Unlock()
			continue
		}
		sort.Strings(subs)
		d.scanning = true
		d.fresh = nil
		scans = append(scans, dueScan{shard: uint32(sh), subjects: subs})
		d.mu.Unlock()
	}
	return scans
}

// beginFull marks every shard scanning for a priming pass.
func (ix *dueIndex) beginFull() {
	for sh := range ix.shards {
		d := &ix.shards[sh]
		d.mu.Lock()
		d.scanning = true
		d.fresh = nil
		d.mu.Unlock()
	}
}

// abort clears the scanning marks after a failed pass, leaving the index
// contents untouched (conservative: everything stays due).
func (ix *dueIndex) abort() {
	for sh := range ix.shards {
		d := &ix.shards[sh]
		d.mu.Lock()
		d.scanning = false
		d.fresh = nil
		d.mu.Unlock()
	}
}

// installDue applies a scoped pass's results: for each scanned subject the
// exact recomputed next deadline (zero = none left), min-merged with any
// deadline noted during the scan. Unscanned subjects keep their entries
// (notes during the scan updated them directly).
func (ix *dueIndex) installDue(scans []dueScan, next []map[string]time.Time) {
	for i, sc := range scans {
		d := &ix.shards[sc.shard]
		d.mu.Lock()
		for _, s := range sc.subjects {
			v := next[i][s]
			if f, ok := d.fresh[s]; ok && (v.IsZero() || f.Before(v)) {
				v = f
			}
			if v.IsZero() {
				delete(d.subjects, s)
			} else {
				d.subjects[s] = v
			}
		}
		d.scanning = false
		d.fresh = nil
		d.recomputeEarliestLocked()
		d.mu.Unlock()
	}
}

// installFull replaces the whole index with a priming pass's results,
// min-merged with everything noted during the scan.
func (ix *dueIndex) installFull(next map[uint32]map[string]time.Time) {
	for sh := range ix.shards {
		d := &ix.shards[sh]
		d.mu.Lock()
		m := next[uint32(sh)]
		if m == nil {
			m = make(map[string]time.Time)
		}
		for s, f := range d.fresh {
			if cur, ok := m[s]; !ok || f.Before(cur) {
				m[s] = f
			}
		}
		d.subjects = m
		d.scanning = false
		d.fresh = nil
		d.recomputeEarliestLocked()
		d.mu.Unlock()
	}
}

// sweepTarget is one expired record found by a scan.
type sweepTarget struct {
	pdid    string
	subject string
	expiry  time.Time
}

// sweepPassInfo describes the shape of one completed sweep pass.
type sweepPassInfo struct {
	full            bool
	shardsScanned   int
	subjectsScanned int
}

// sweepOnce runs one sweep pass: the scoped (or, the first time, the
// priming) scan, the batched deletion of every expired record found, and
// the index install. Caller semantics match the public SweepExpired.
func (e *Engine) sweepOnce() ([]string, sweepPassInfo, error) {
	e.sweepMu.Lock()
	defer e.sweepMu.Unlock()
	store, tok := e.d.Store(), e.d.Token()
	now := e.clock.Now()
	workers := e.workerCount()

	var info sweepPassInfo
	var scans []dueScan
	if !e.swept {
		// Priming pass: scan every subject to seed exact deadlines. Mark
		// every shard scanning BEFORE listing, so a membrane written
		// between the listing and the install lands in the fresh-note
		// merge instead of being wiped by installFull's map replacement.
		info.full = true
		e.due.beginFull()
		subjects, err := store.Subjects(tok)
		if err != nil {
			e.due.abort()
			return nil, info, fmt.Errorf("rights: sweep: %w", err)
		}
		byShard := make(map[uint32][]string)
		for _, s := range subjects {
			sh := store.ShardOf(s)
			byShard[sh] = append(byShard[sh], s)
		}
		shs := make([]uint32, 0, len(byShard))
		for sh := range byShard {
			shs = append(shs, sh)
		}
		sort.Slice(shs, func(i, j int) bool { return shs[i] < shs[j] })
		for _, sh := range shs {
			scans = append(scans, dueScan{shard: sh, subjects: byShard[sh]})
		}
	} else {
		scans = e.due.beginDue(now)
	}
	info.shardsScanned = len(scans)
	for _, sc := range scans {
		info.subjectsScanned += len(sc.subjects)
	}

	// Scan phase: per due shard, list and fetch only the due subjects'
	// records, collecting the expired ones and each subject's next
	// deadline. Shards (and subjects) not in scans are never locked.
	targets := make([][]sweepTarget, len(scans))
	next := make([]map[string]time.Time, len(scans))
	err := ForEachIndexed(len(scans), workers, func(i int) error {
		sc := scans[i]
		nx := make(map[string]time.Time)
		for _, subject := range sc.subjects {
			pdids, err := store.ListBySubject(tok, subject)
			if err != nil {
				return err
			}
			if len(pdids) == 0 {
				continue
			}
			ms, err := store.GetMembranes(tok, pdids)
			if err != nil {
				return err
			}
			for j, m := range ms {
				if m.ExpiredAt(now) {
					targets[i] = append(targets[i], sweepTarget{
						pdid: pdids[j], subject: subject, expiry: m.CreatedAt.Add(m.TTL),
					})
				} else if m.TTL > 0 && !m.CreatedAt.IsZero() {
					dl := m.CreatedAt.Add(m.TTL)
					if cur, ok := nx[subject]; !ok || dl.Before(cur) {
						nx[subject] = dl
					}
				}
			}
		}
		next[i] = nx
		return nil
	})
	if err != nil {
		e.due.abort()
		return nil, info, fmt.Errorf("rights: sweep: %w", err)
	}
	if e.sweepScanHook != nil {
		e.sweepScanHook()
	}

	// Delete phase: one maintenance batch on the DED executor. A failed
	// delete keeps partial progress and re-arms the record's deadline so
	// the next pass retries it.
	var flat []sweepTarget
	for _, list := range targets {
		flat = append(flat, list...)
	}
	reqs := make([]ps.InvokeRequest, len(flat))
	for i, t := range flat {
		reqs[i] = ps.InvokeRequest{
			Processing:  builtins.DeleteName,
			PDRef:       t.pdid,
			Maintenance: true,
		}
	}
	var deleted []string
	var failed []sweepTarget
	var firstErr error
	for i, item := range e.ps.InvokeBatch(reqs, workers) {
		if item.Err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("rights: sweep %s: %w", flat[i].pdid, item.Err)
			}
			failed = append(failed, flat[i])
			continue
		}
		e.d.Ledger().Forget(flat[i].pdid)
		deleted = append(deleted, flat[i].pdid)
	}

	if info.full {
		nm := make(map[uint32]map[string]time.Time, len(scans))
		for i, sc := range scans {
			nm[sc.shard] = next[i]
		}
		e.due.installFull(nm)
		e.swept = true
	} else {
		e.due.installDue(scans, next)
	}
	for _, t := range failed {
		e.due.rearm(t.subject, t.expiry)
	}
	sort.Strings(deleted)
	return deleted, info, firstErr
}

// SweeperStats counts the background sweeper's activity.
type SweeperStats struct {
	// Passes counts completed sweep passes; FullPasses the priming
	// subset. Errors counts passes that returned an error.
	Passes     uint64
	FullPasses uint64
	Errors     uint64
	// Deleted / ShardsScanned / SubjectsScanned accumulate across passes.
	Deleted         uint64
	ShardsScanned   uint64
	SubjectsScanned uint64
	// LastPass is the start instant of the last completed pass.
	LastPass time.Time
}

// SweeperOptions configures a background sweeper.
type SweeperOptions struct {
	// Interval is the maximum gap between sweep passes — the grace
	// window of the retention guarantee: a record expired at T is
	// physically deleted by T+Interval even if every deadline signal
	// were lost, and with the due-index's exact wakeups normally at the
	// first instant after T. Default one minute.
	Interval time.Duration
}

// Sweeper is the deadline-aware background retention sweeper: a
// ticker-driven loop firing scoped SweepExpired passes. Start/Stop are
// idempotent and a stopped sweeper can be restarted.
type Sweeper struct {
	eng *Engine
	// wake is the kick channel: deadline notifications, Sync, Stop and
	// SetInterval nudge the loop out of its clock wait.
	wake chan struct{}

	mu          sync.Mutex
	interval    time.Duration
	cond        *sync.Cond
	running     bool
	stop        chan struct{}
	done        chan struct{}
	forced      bool
	lastCovered time.Time
	stats       SweeperStats
}

// DefaultSweepInterval is the fallback pass cadence when
// SweeperOptions.Interval is unset.
const DefaultSweepInterval = time.Minute

// NewSweeper builds a sweeper for the engine. Call Start to run it.
func NewSweeper(e *Engine, opts SweeperOptions) *Sweeper {
	iv := opts.Interval
	if iv <= 0 {
		iv = DefaultSweepInterval
	}
	sw := &Sweeper{eng: e, interval: iv, wake: make(chan struct{}, 1)}
	sw.cond = sync.NewCond(&sw.mu)
	return sw
}

// Interval reports the current pass cadence.
func (sw *Sweeper) Interval() time.Duration {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.interval
}

// SetInterval changes the pass cadence at runtime (d <= 0 restores
// DefaultSweepInterval) and kicks a sleeping loop so the new cadence takes
// effect immediately rather than after the old interval elapses.
func (sw *Sweeper) SetInterval(d time.Duration) {
	if d <= 0 {
		d = DefaultSweepInterval
	}
	sw.mu.Lock()
	sw.interval = d
	sw.mu.Unlock()
	sw.kickWake()
}

// StartSweeper builds and starts a background sweeper on the engine.
func (e *Engine) StartSweeper(opts SweeperOptions) *Sweeper {
	sw := NewSweeper(e, opts)
	sw.Start()
	return sw
}

// Start launches the background loop. Starting a running sweeper is a
// no-op.
func (sw *Sweeper) Start() {
	sw.mu.Lock()
	if sw.running {
		sw.mu.Unlock()
		return
	}
	sw.running = true
	sw.stop = make(chan struct{})
	sw.done = make(chan struct{})
	stop, done := sw.stop, sw.done
	sw.mu.Unlock()
	sw.eng.due.setKick(sw.kickWake)
	go sw.loop(stop, done)
}

// Stop halts the loop and waits for it to exit; in-flight passes finish.
// Stopping a stopped sweeper is a no-op.
func (sw *Sweeper) Stop() {
	sw.mu.Lock()
	if !sw.running {
		sw.mu.Unlock()
		return
	}
	sw.running = false
	stop, done := sw.stop, sw.done
	sw.mu.Unlock()
	sw.eng.due.setKick(nil)
	close(stop)
	sw.kickWake()
	<-done
	sw.mu.Lock()
	sw.cond.Broadcast() // unblock Sync callers
	sw.mu.Unlock()
}

// Running reports whether the loop is active.
func (sw *Sweeper) Running() bool {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.running
}

// Stats snapshots the sweeper counters.
func (sw *Sweeper) Stats() SweeperStats {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.stats
}

// Sync forces a sweep pass covering the instant of the call and blocks
// until it completes (or the sweeper stops) — the deterministic join point
// for simclock tests: advance the clock, Sync, assert.
func (sw *Sweeper) Sync() {
	target := sw.eng.clock.Now()
	sw.mu.Lock()
	if !sw.running {
		sw.mu.Unlock()
		return
	}
	sw.forced = true
	sw.mu.Unlock()
	sw.kickWake()
	sw.mu.Lock()
	for sw.running && sw.lastCovered.Before(target) {
		sw.cond.Wait()
	}
	sw.mu.Unlock()
}

// kickWake nudges the loop; a pending nudge is enough, extra ones drop.
func (sw *Sweeper) kickWake() {
	select {
	case sw.wake <- struct{}{}:
	default:
	}
}

// loop is the sweeper body: run a pass whenever something is due (or a
// Sync forces one), otherwise sleep until the earliest deadline or one
// Interval, whichever is sooner. Right after a pass the loop always goes
// through the wait path, so a record that cannot be deleted (its deadline
// re-armed in the past) is retried once per Interval instead of spinning.
func (sw *Sweeper) loop(stop, done chan struct{}) {
	defer close(done)
	ranPass := false
	for {
		select {
		case <-stop:
			return
		default:
		}
		now := sw.eng.clock.Now()
		sw.mu.Lock()
		forced := sw.forced
		sw.forced = false
		interval := sw.interval
		sw.mu.Unlock()
		run := forced
		if !run && !ranPass {
			if e, ok := sw.eng.due.earliestDeadline(); ok && e.Before(now) {
				run = true
			}
		}
		if run {
			sw.pass()
			ranPass = true
			continue
		}
		target := now.Add(interval)
		if e, ok := sw.eng.due.earliestDeadline(); ok {
			// Wake at the first instant strictly after the deadline
			// (expiry is strict-after). A deadline already in the past
			// here means the pass just failed on it: keep the Interval
			// backoff instead.
			if t := e.Add(time.Nanosecond); t.After(now) && t.Before(target) {
				target = t
			}
		}
		sw.waitUntil(target, stop)
		ranPass = false
	}
}

// pass runs one sweep and records its outcome.
func (sw *Sweeper) pass() {
	start := sw.eng.clock.Now()
	deleted, info, err := sw.eng.sweepOnce()
	sw.mu.Lock()
	sw.stats.Passes++
	if info.full {
		sw.stats.FullPasses++
	}
	if err != nil {
		sw.stats.Errors++
	}
	sw.stats.Deleted += uint64(len(deleted))
	sw.stats.ShardsScanned += uint64(info.shardsScanned)
	sw.stats.SubjectsScanned += uint64(info.subjectsScanned)
	sw.stats.LastPass = start
	if start.After(sw.lastCovered) {
		sw.lastCovered = start
	}
	sw.cond.Broadcast()
	sw.mu.Unlock()
}

// waitUntil blocks until the machine clock reaches target, a kick
// arrives, or stop closes.
func (sw *Sweeper) waitUntil(target time.Time, stop chan struct{}) {
	w, ok := sw.eng.clock.(simclock.Waiter)
	if !ok {
		// Unknown clock implementation: poll at a coarse real-time
		// cadence so deadlines are still met within the grace window.
		select {
		case <-time.After(50 * time.Millisecond):
		case <-sw.wake:
		case <-stop:
		}
		return
	}
	cancel := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		select {
		case <-stop:
			close(cancel)
		case <-sw.wake:
			close(cancel)
		case <-finished:
		}
	}()
	w.WaitUntil(target, cancel)
	close(finished)
}
