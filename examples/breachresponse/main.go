// Breach response: after a disclosure, subjects revoke consent and invoke
// the right to be forgotten en masse, while the service keeps running.
//
// The macro scenario models the wave: ordinary profile traffic with
// periodic bursts of consent withdrawals (×20) and erasure requests (×10),
// driven against one machine. The scorecard shows the wave absorbed as
// first-class traffic — erasure and consent changes have their own
// throughput and tail-latency rows — and the post-run invariants prove the
// machine kept its promises under the surge: a raw-device scan finds zero
// plaintext residue of any erased record, no erased record is still
// readable, and every Article 15 report stays consent-consistent.
//
//	go run ./examples/breachresponse
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/simclock"
	"repro/internal/workload"
	"repro/internal/xrand"
)

const seed = 42

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sc, ok := workload.LookupScenario("breach-response")
	if !ok {
		return fmt.Errorf("breach-response scenario missing")
	}
	mix := sc.MixFor(true)
	ops, err := workload.Generate(mix, seed)
	if err != nil {
		return err
	}
	fmt.Printf("== breach response: %d subjects, %d ops over %.0fs of simulated traffic ==\n",
		mix.Subjects, len(ops), mix.Duration.Seconds())
	fmt.Println("   consent withdrawals and erasure requests arrive in waves on top of")
	fmt.Println("   ordinary profile traffic; the machine must shred, not just unlink")
	fmt.Println()

	blocks, npdBlocks, inodes := workload.BootSizing(mix, ops)
	sys, err := core.Boot(core.Options{
		Clock:         simclock.NewSim(simclock.Epoch),
		CryptoRand:    xrand.NewReader(seed),
		AuthorityBits: 1024,
		PDDiskBlocks:  blocks,
		NPDDiskBlocks: npdBlocks,
		NInodes:       inodes,
		JournalBlocks: 256,
		Workers:       2,
	})
	if err != nil {
		return err
	}
	card, err := workload.RunScenario(workload.NewSystemTarget(sys), sc,
		workload.RunConfig{Seed: seed, Small: true, Pace: true})
	if err != nil {
		return err
	}
	workload.WriteScorecard(os.Stdout, card)
	fmt.Println()

	inv := card.Invariants
	fmt.Printf("erasure wave: %d subjects / %d records shredded during the run\n",
		inv.ErasedSubjects, inv.ErasedRecords)
	fmt.Printf("raw-device scan: %d plaintext hits over %d sampled erased secrets\n",
		inv.ResidueHits, inv.ResidueChecked)
	if !card.Clean() {
		return fmt.Errorf("regulator invariants violated: %+v", inv)
	}
	fmt.Println("ok: the wave was absorbed and the right to be forgotten held on raw media")
	return nil
}
