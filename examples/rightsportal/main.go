// Rights portal: every GDPR data-subject right end to end.
//
// One subject exercises, in order: access (Art. 15), rectification
// (Art. 16), restriction (Art. 18), portability (Art. 20), consent
// withdrawal (Art. 7(3)) and erasure (Art. 17) — then the authority plays
// the legal-investigation card and recovers the escrowed data that the
// operator can no longer read, and the deadline-aware background sweeper
// enforces storage limitation (Art. 5(1)(e)) when the retention period
// runs out.
//
//	go run ./examples/rightsportal
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/dbfs"
	"repro/internal/rights"
	"repro/internal/typedsl"
)

const accountDSL = `
type account {
  fields {
    name: string,
    iban: string sensitive,
    city: string
  };
  view v_city { city };
  consent {
    fraud_check: all,
    marketing: v_city
  };
  collection { web_form: account_form.html };
  origin: subject;
  age: 5Y;
  sensitivity: high;
}
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== subject rights portal ==")
	sys, err := core.Boot(core.Options{AuthorityBits: 1024})
	if err != nil {
		return err
	}
	if err := sys.DeclareTypesDSL(accountDSL, typedsl.CompileOptions{}); err != nil {
		return err
	}
	form := collect.NewWebFormSource("account_form.html")
	sys.RegisterSource("account", form)
	form.Submit("nora", dbfs.Record{
		"name": dbfs.S("Nora Weber"),
		"iban": dbfs.S("DE89 3704 0044 0532 0130 00"),
		"city": dbfs.S("Lyon"),
	})
	if _, err := sys.Acquire("account", "web_form", []string{"nora"}); err != nil {
		return err
	}

	// Art. 15 — access.
	report, err := sys.Rights().Access("nora")
	if err != nil {
		return err
	}
	raw, err := rights.ExportJSON(report)
	if err != nil {
		return err
	}
	fmt.Printf("  [Art.15] access report: %d bytes of structured JSON; keys are meaningful (name, iban, city)\n", len(raw))
	if !strings.Contains(string(raw), `"iban"`) {
		return fmt.Errorf("export lost field keys")
	}

	// Art. 16 — rectification.
	pdid := report.Data["account"][0].PDID
	if err := sys.Rights().Rectify(pdid, dbfs.Record{"city": dbfs.S("Rennes")}); err != nil {
		return err
	}
	fmt.Println("  [Art.16] rectified city Lyon -> Rennes")

	// Art. 18 — restriction: processing stops while a dispute is open.
	if err := sys.Rights().Restrict(pdid, true); err != nil {
		return err
	}
	fmt.Println("  [Art.18] processing restricted (membrane flag; every purpose now filtered)")
	if err := sys.Rights().Restrict(pdid, false); err != nil {
		return err
	}

	// Art. 20 — portability.
	portable, err := sys.Rights().Portability("nora")
	if err != nil {
		return err
	}
	fmt.Printf("  [Art.20] portability bundle: %d bytes, ready for another operator\n", len(portable))

	// Art. 7(3) — consent withdrawal.
	if err := sys.Rights().WithdrawConsent("nora", "marketing"); err != nil {
		return err
	}
	fmt.Println("  [Art.7]  marketing consent withdrawn (propagates to every copy)")

	// Art. 17 — erasure with escrow.
	erased, err := sys.Rights().Erase("nora")
	if err != nil {
		return err
	}
	fmt.Printf("  [Art.17] erased %v; operator reads now fail\n", erased.Erased)
	if hits := sys.ResidueScan([]byte("Nora Weber")); len(hits) != 0 {
		return fmt.Errorf("plaintext residue after erasure: %v", hits)
	}
	fmt.Println("           raw-disk scan: zero plaintext residues")

	// The authorities' path (§4): escrowed key + retained ciphertext.
	m, err := sys.DBFS().GetMembrane(sys.DEDToken(), pdid)
	if err != nil {
		return err
	}
	escrow, err := sys.Vault().Escrow(m.EscrowRef)
	if err != nil {
		return err
	}
	ct, err := sys.DBFS().RawCiphertext(sys.DEDToken(), pdid)
	if err != nil {
		return err
	}
	pt, err := sys.Authority().Recover(escrow, ct)
	if err != nil {
		return err
	}
	fmt.Printf("  [authority] escrow recovery succeeded (%d plaintext bytes available to investigators only)\n", len(pt))

	// Art. 5(1)(e) — storage limitation, enforced by the clock. The
	// background sweeper tracks every record's retention deadline and
	// physically deletes expired PD (tombstones and retained ciphertext
	// included) without anyone asking. The portal runs on the simulated
	// machine clock, so five years pass in one call.
	sweeper := sys.Rights().StartSweeper(rights.SweeperOptions{Interval: time.Hour})
	defer sweeper.Stop()
	clk, ok := sys.SimClock()
	if !ok {
		return fmt.Errorf("sim clock expected")
	}
	clk.Advance(5*365*24*time.Hour + time.Hour) // the account type's age is 5Y
	sweeper.Sync()
	leftover, err := sys.DBFS().ListBySubject(sys.DEDToken(), "nora")
	if err != nil {
		return err
	}
	if len(leftover) != 0 {
		return fmt.Errorf("retention deadline passed but records remain: %v", leftover)
	}
	st := sweeper.Stats()
	fmt.Printf("  [Art.5]  retention ran out: background sweeper deleted %d record(s) in %d pass(es), nothing left on disk\n",
		st.Deleted, st.Passes)

	// The audit chain ties it all together.
	if err := sys.Audit().Verify(); err != nil {
		return err
	}
	fmt.Printf("  audit log: %d hash-chained entries, chain verified\n", sys.Audit().Len())
	return nil
}
