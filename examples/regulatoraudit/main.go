// Regulator audit: a supervisory authority serves a bulk Article 15
// request — every data subject's records, purposes and consent state —
// while the bank keeps serving its rate-limited foreground traffic.
//
// The macro scenario drives the whole machine at once: account inserts and
// updates, purpose-bound KYC/analytics queries behind a per-purpose
// admission token bucket, single Article 15 access requests, the bulk
// AccessBatch audit sweeps, a trickle of erasures and consent changes, and
// session churn for the retention sweeper. The scorecard shows what a
// regulator would ask for: per-op-class throughput and tail latency, how
// much foreground load the admission controller shed to protect the SLO,
// and the exact compliance invariants (zero plaintext residue of erased
// records, zero erased-but-readable records, every access report
// consent-consistent).
//
//	go run ./examples/regulatoraudit
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/simclock"
	"repro/internal/workload"
	"repro/internal/xrand"
)

const seed = 42

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sc, ok := workload.LookupScenario("regulator-audit")
	if !ok {
		return fmt.Errorf("regulator-audit scenario missing")
	}
	mix := sc.MixFor(true)
	ops, err := workload.Generate(mix, seed)
	if err != nil {
		return err
	}
	fmt.Printf("== regulator audit: %d subjects, %d ops over %.0fs of simulated traffic ==\n",
		mix.Subjects, len(ops), mix.Duration.Seconds())
	fmt.Println("   foreground `service` queries are rate-limited; the bulk Article 15")
	fmt.Println("   audit sweeps run as access-batch ops against the same machine")
	fmt.Println()

	blocks, npdBlocks, inodes := workload.BootSizing(mix, ops)
	sys, err := core.Boot(core.Options{
		Clock:         simclock.NewSim(simclock.Epoch),
		CryptoRand:    xrand.NewReader(seed),
		AuthorityBits: 1024,
		PDDiskBlocks:  blocks,
		NPDDiskBlocks: npdBlocks,
		NInodes:       inodes,
		JournalBlocks: 256,
		Workers:       2,
	})
	if err != nil {
		return err
	}
	card, err := workload.RunScenario(workload.NewSystemTarget(sys), sc,
		workload.RunConfig{Seed: seed, Small: true, Pace: true})
	if err != nil {
		return err
	}
	workload.WriteScorecard(os.Stdout, card)
	fmt.Println()

	var queries, batches workload.ClassStats
	for _, row := range card.Classes {
		switch row.Class {
		case "ded-query":
			queries = row
		case "access-batch":
			batches = row
		}
	}
	fmt.Printf("admission control: %d of %d foreground queries shed at the `service` token bucket\n",
		queries.Rejected, queries.Issued)
	fmt.Printf("audit sweeps: %d access-batch ops exported and consent-checked %d records\n",
		batches.Issued, card.Invariants.AccessChecked)
	if !card.Clean() {
		return fmt.Errorf("regulator invariants violated: %+v", card.Invariants)
	}
	fmt.Println("ok: audit served under load, every compliance invariant holds")
	return nil
}
