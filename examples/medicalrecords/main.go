// Medical records: the paper's §1 motivating case — "in 2020 the CNIL in
// France penalized two doctors (€9K) for hosting medical images on a server
// which was freely accessible on the Internet".
//
// The example runs the same clinic twice. On a conventional stack (the
// Fig. 2 baseline) the records live as plaintext files: anyone reading the
// disk sees diagnoses, and deletion leaves journal residues. On rgpdOS the
// records are typed, membraned and encrypted; direct access attempts are
// denied by the LSM guard, research only sees the statistics view, and
// expired records are swept.
//
//	go run ./examples/medicalrecords
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/baseline"
	"repro/internal/blockdev"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/dbfs"
	"repro/internal/ded"
	"repro/internal/ps"
	"repro/internal/purpose"
	"repro/internal/simclock"
	"repro/internal/typedsl"
)

const patientDSL = `
type patient {
  fields {
    name: string,
    diagnosis: string sensitive,
    age: int
  };
  view v_stats { age };
  consent {
    care: all,
    research: v_stats
  };
  collection { web_form: intake_form.html };
  origin: subject;
  age: 6M;
  sensitivity: high;
}
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

type patient struct {
	id        string
	name      string
	diagnosis string
	age       int64
}

var patients = []patient{
	{"p001", "Amina Kone", "diabetes type 2", 54},
	{"p002", "Luc Moreau", "hypertension", 61},
	{"p003", "Sara Lindqvist", "asthma", 29},
}

func run() error {
	fmt.Println("== the CNIL doctors case, twice ==")

	// --- Conventional server (Fig. 2 baseline) ---
	dev := blockdev.MustMem(8192)
	eng, err := baseline.New(dev, simclock.NewSim(simclock.Epoch))
	if err != nil {
		return err
	}
	if err := eng.CreateTable("patient"); err != nil {
		return err
	}
	ids := make([]string, 0, len(patients))
	for _, p := range patients {
		id, err := eng.Insert("patient", p.id,
			map[string]string{"name": p.name, "diagnosis": p.diagnosis},
			map[string]bool{"care": true}, 0)
		if err != nil {
			return err
		}
		ids = append(ids, id)
	}
	// "Freely accessible on the Internet": reading the raw disk works.
	exposed := 0
	for _, p := range patients {
		if len(blockdev.FindResidue(dev, []byte(p.diagnosis))) > 0 {
			exposed++
		}
	}
	fmt.Printf("  [baseline] raw-disk scan exposes %d/%d diagnoses in plaintext\n", exposed, len(patients))
	// Deleting does not help: the journal remembers.
	for _, id := range ids {
		if err := eng.Delete(id); err != nil {
			return err
		}
	}
	residues := 0
	for _, p := range patients {
		if len(blockdev.FindResidue(dev, []byte(p.diagnosis))) > 0 {
			residues++
		}
	}
	fmt.Printf("  [baseline] after deleting every record, %d/%d diagnoses still recoverable (journal/free space)\n",
		residues, len(patients))

	// --- The same clinic on rgpdOS ---
	sys, err := core.Boot(core.Options{AuthorityBits: 1024})
	if err != nil {
		return err
	}
	if err := sys.DeclareTypesDSL(patientDSL, typedsl.CompileOptions{}); err != nil {
		return err
	}
	form := collect.NewWebFormSource("intake_form.html")
	sys.RegisterSource("patient", form)
	for _, p := range patients {
		form.Submit(p.id, dbfs.Record{
			"name": dbfs.S(p.name), "diagnosis": dbfs.S(p.diagnosis), "age": dbfs.I(p.age),
		})
	}
	if _, err := sys.Acquire("patient", "web_form", []string{"p001", "p002", "p003"}); err != nil {
		return err
	}
	exposed = 0
	for _, p := range patients {
		if len(sys.ResidueScan([]byte(p.diagnosis))) > 0 {
			exposed++
		}
	}
	fmt.Printf("  [rgpdOS]   raw-disk scan exposes %d/%d diagnoses (all ciphertext)\n", exposed, len(patients))

	// A direct access attempt from outside rgpdOS (no DED token).
	intruder := sys.Guard().Mint("internet-scraper") // no capabilities
	_, err = sys.DBFS().GetRecord(intruder, "patient/p001/1")
	fmt.Printf("  [rgpdOS]   direct DBFS access from outside: %v\n", err != nil)

	// Research sees only the statistics view.
	decl := &purpose.Decl{Name: "research", Description: "Cohort age statistics",
		Basis: purpose.BasisConsent, Reads: []string{"patient.age"}}
	impl := &ded.Func{Name: "avg_age", Purpose: "research",
		DeclaredReads: []string{"patient.age"},
		Fn: func(c *ded.Ctx) (ded.Output, error) {
			if c.Has("diagnosis") {
				return ded.Output{}, fmt.Errorf("diagnosis visible to research")
			}
			v, err := c.Field("age")
			if err != nil {
				return ded.Output{}, err
			}
			return ded.Output{NonPD: v.I}, nil
		}}
	if err := sys.PS().Register(decl, impl, false); err != nil {
		return err
	}
	res, err := sys.PS().Invoke(ps.InvokeRequest{Processing: "research", TypeName: "patient"})
	if err != nil {
		return err
	}
	var sum int64
	for _, o := range res.Outputs {
		sum += o.(int64)
	}
	fmt.Printf("  [rgpdOS]   research purpose saw ages only; mean age = %d (diagnoses invisible)\n",
		sum/int64(len(res.Outputs)))

	// Storage limitation: after 6 months the records expire and are swept.
	clk, _ := sys.SimClock()
	clk.Advance(200 * 24 * time.Hour)
	deleted, err := sys.Rights().SweepExpired()
	if err != nil {
		return err
	}
	fmt.Printf("  [rgpdOS]   TTL sweep after 200 days removed %d expired records\n", len(deleted))
	return nil
}
