// Adtech: consent-driven analytics at population scale.
//
// An advertising operator holds 200 user profiles. Two purposes run over
// them: ad_targeting (needs full profiles; many users refuse) and
// audience_stats (an anonymized view; most users accept). The example shows
// the membrane filter partitioning the population per purpose, a live
// consent withdrawal shrinking the next run, and the dynamic purpose check
// catching an implementation that probes beyond its declaration.
//
//	go run ./examples/adtech
package main

import (
	"fmt"
	"log"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/dbfs"
	"repro/internal/ded"
	"repro/internal/membrane"
	"repro/internal/ps"
	"repro/internal/purpose"
	"repro/internal/typedsl"
	"repro/internal/workload"
	"repro/internal/xrand"
)

const profileDSL = `
type profile {
  fields {
    name: string,
    email: string sensitive,
    year_of_birthdate: int
  };
  view v_cohort { year_of_birthdate };
  consent {
    audience_stats: v_cohort
  };
  collection { web_form: signup.html };
  origin: subject;
  age: 2Y;
  sensitivity: medium;
}
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 200
	fmt.Println("== adtech: consent decides who gets processed ==")
	sys, err := core.Boot(core.Options{AuthorityBits: 1024, PDDiskBlocks: 1 << 15, NInodes: 1 << 14})
	if err != nil {
		return err
	}
	if err := sys.DeclareTypesDSL(profileDSL, typedsl.CompileOptions{}); err != nil {
		return err
	}
	form := collect.NewWebFormSource("signup.html")
	sys.RegisterSource("profile", form)
	rng := xrand.New(2024)
	subjects := workload.SubjectIDs(n)
	for _, s := range subjects {
		u := workload.UserRecord(rng, s)
		form.Submit(s, dbfs.Record{
			"name":              u["name"],
			"email":             dbfs.S(s + "@example.com"),
			"year_of_birthdate": u["year_of_birthdate"],
		})
	}
	if _, err := sys.Acquire("profile", "web_form", subjects); err != nil {
		return err
	}
	// 40% of users additionally opt in to full-profile ad targeting.
	optedIn := 0
	for _, s := range subjects {
		if rng.Bool(0.4) {
			if err := sys.Rights().SetConsent(s, "ad_targeting", membrane.Grant{Kind: membrane.GrantAll}); err != nil {
				return err
			}
			optedIn++
		}
	}
	fmt.Printf("  population: %d profiles; %d opted in to ad_targeting; all default to audience_stats via v_cohort\n",
		n, optedIn)

	register := func(name, desc string, reads []string, fn func(*ded.Ctx) (ded.Output, error)) error {
		return sys.PS().Register(
			&purpose.Decl{Name: name, Description: desc, Basis: purpose.BasisConsent, Reads: reads},
			&ded.Func{Name: name + "_impl", Purpose: name, DeclaredReads: reads, Fn: fn},
			false)
	}
	if err := register("ad_targeting", "Personalized advertising",
		[]string{"profile.name", "profile.year_of_birthdate"},
		func(c *ded.Ctx) (ded.Output, error) {
			if _, err := c.Field("name"); err != nil {
				return ded.Output{}, err
			}
			return ded.Output{NonPD: 1}, nil
		}); err != nil {
		return err
	}
	if err := register("audience_stats", "Cohort size statistics",
		[]string{"profile.year_of_birthdate"},
		func(c *ded.Ctx) (ded.Output, error) {
			v, err := c.Field("year_of_birthdate")
			if err != nil {
				return ded.Output{}, err
			}
			decade := (v.I / 10) * 10
			return ded.Output{NonPD: decade}, nil
		}); err != nil {
		return err
	}

	invoke := func(p string) (*ded.Result, error) {
		return sys.PS().Invoke(ps.InvokeRequest{Processing: p, TypeName: "profile"})
	}
	resT, err := invoke("ad_targeting")
	if err != nil {
		return err
	}
	resS, err := invoke("audience_stats")
	if err != nil {
		return err
	}
	fmt.Printf("  ad_targeting:   processed %3d, filtered %v\n", resT.Processed, resT.Filtered)
	fmt.Printf("  audience_stats: processed %3d, filtered %v\n", resS.Processed, resS.Filtered)

	// Cohort histogram from the anonymized outputs.
	cohorts := map[int64]int{}
	for _, o := range resS.Outputs {
		cohorts[o.(int64)]++
	}
	fmt.Printf("  decades represented: %d (no names or emails ever crossed ded_return)\n", len(cohorts))

	// Population-scale fan-out: one invocation per subject, dispatched
	// concurrently through the DED executor. Distinct subjects land on
	// distinct DBFS lock shards, so the batch scales with Options.Workers
	// while each run keeps its own zeroized domain and audit trail.
	reqs := make([]ps.InvokeRequest, len(subjects))
	for i, s := range subjects {
		reqs[i] = ps.InvokeRequest{Processing: "audience_stats", TypeName: "profile", SubjectFilter: s}
	}
	perSubject := 0
	for _, item := range sys.InvokeBatch(reqs) {
		if item.Err != nil {
			return item.Err
		}
		perSubject += item.Res.Processed
	}
	fmt.Printf("  per-subject batch (%d workers): %d invocations, %d profiles processed\n",
		sys.Workers(), len(reqs), perSubject)

	// A user changes their mind: the very next run excludes them.
	victim := subjects[0]
	if err := sys.Rights().WithdrawConsent(victim, "ad_targeting"); err != nil {
		return err
	}
	if err := sys.Rights().WithdrawConsent(victim, "audience_stats"); err != nil {
		return err
	}
	resT2, err := invoke("ad_targeting")
	if err != nil {
		return err
	}
	fmt.Printf("  after %s withdrew: ad_targeting processed %d (was %d)\n",
		victim, resT2.Processed, resT.Processed)

	// A sloppy implementation probes past its declaration: the dynamic
	// purpose check files an alert for the sysadmin.
	if err := register("reach_report", "Weekly reach report",
		[]string{"profile.year_of_birthdate"},
		func(c *ded.Ctx) (ded.Output, error) {
			_ = c.Has("email") // undeclared probe
			v, err := c.Field("year_of_birthdate")
			if err != nil {
				return ded.Output{}, err
			}
			return ded.Output{NonPD: v.I}, nil
		}); err != nil {
		return err
	}
	// reach_report needs consent; run it against the stats cohort.
	for _, s := range subjects[:10] {
		if err := sys.Rights().SetConsent(s, "reach_report", membrane.Grant{Kind: membrane.GrantView, View: "v_cohort"}); err != nil {
			return err
		}
	}
	if _, err := invoke("reach_report"); err != nil {
		return err
	}
	for _, a := range sys.PS().PendingAlerts() {
		fmt.Printf("  ALERT #%d (%s phase): processing %q accessed undeclared %v — awaiting sysadmin\n",
			a.ID, a.Phase, a.Processing, a.Report.Undeclared)
	}
	return nil
}
