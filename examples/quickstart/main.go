// Quickstart: the paper's Listings 1–3 as a running program.
//
// It boots rgpdOS, declares the Listing 1 "user" type in the DSL, collects
// one subject through the web form, registers Listing 2's compute_age under
// purpose3, invokes it via ps_invoke (Listing 3), and shows that purpose2 —
// denied by the default consent — processes nothing.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/dbfs"
	"repro/internal/ded"
	"repro/internal/ps"
	"repro/internal/purpose"
	"repro/internal/typedsl"
)

// listing1 is the paper's type declaration (sensitivity "hight" and the
// "ano" consent shorthand included).
const listing1 = `
type user {
  fields {
    name: string,
    pwd: string sensitive,
    year_of_birthdate: int
  };
  view v_name { name };
  view v_ano { age };
  consent {
    purpose1: all,
    purpose2: none,
    purpose3: ano
  };
  collection { web_form: user_form.html };
  origin: subject;
  age: 1Y;
  sensitivity: hight;
}
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== rgpdOS quickstart ==")
	sys, err := core.Boot(core.Options{AuthorityBits: 1024})
	if err != nil {
		return err
	}
	for _, k := range sys.Machine().Kernels() {
		fmt.Printf("  sub-kernel %-10s class=%s\n", k.Name, k.Class)
	}

	// Listing 1: declare the PD type (the "age" view field is derived from
	// year_of_birthdate, per Listing 2).
	alias := typedsl.CompileOptions{FieldAliases: map[string]string{"age": "year_of_birthdate"}}
	if err := sys.DeclareTypesDSL(listing1, alias); err != nil {
		return err
	}
	fmt.Println("  declared type 'user' from the Listing 1 DSL")

	// Collection: the subject fills the web form; acquisition wraps the
	// record in its membrane before it enters DBFS.
	form := collect.NewWebFormSource("user_form.html")
	sys.RegisterSource("user", form)
	form.Submit("chiraz", dbfs.Record{
		"name":              dbfs.S("Chiraz Benamor"),
		"pwd":               dbfs.S("correct-horse"),
		"year_of_birthdate": dbfs.I(1990),
	})
	if _, err := sys.Acquire("user", "web_form", []string{"chiraz"}); err != nil {
		return err
	}
	fmt.Println("  collected 1 subject via user_form.html (membrane attached at entry)")

	// Listing 2: compute_age, implementing purpose3, which only sees the
	// v_ano view.
	decl := &purpose.Decl{
		Name:        "purpose3",
		Description: "Compute the age of the input user",
		Basis:       purpose.BasisConsent,
		Reads:       []string{"user.year_of_birthdate"},
	}
	impl := &ded.Func{
		Name:          "compute_age",
		Purpose:       "purpose3",
		DeclaredReads: []string{"user.year_of_birthdate"},
		Fn: func(c *ded.Ctx) (ded.Output, error) {
			if !c.Has("year_of_birthdate") { // "is age allowed to be seen?"
				return ded.Output{}, fmt.Errorf("age not visible")
			}
			yob, err := c.Field("year_of_birthdate")
			if err != nil {
				return ded.Output{}, err
			}
			now, err := c.Now()
			if err != nil {
				return ded.Output{}, err
			}
			return ded.Output{NonPD: int64(now.Year()) - yob.I}, nil
		},
	}
	if err := sys.PS().Register(decl, impl, false); err != nil {
		return err
	}

	// Listing 3: ps_invoke.
	res, err := sys.PS().Invoke(ps.InvokeRequest{Processing: "purpose3", TypeName: "user"})
	if err != nil {
		return err
	}
	fmt.Printf("  ps_invoke(compute_age): age = %v (processed %d record)\n", res.Outputs, res.Processed)

	// purpose2 is "none" in the default consent: the membrane filters it.
	decl2 := &purpose.Decl{Name: "purpose2", Description: "Profiling without consent",
		Basis: purpose.BasisConsent, Reads: []string{"user.name"}}
	impl2 := &ded.Func{Name: "profile", Purpose: "purpose2",
		DeclaredReads: []string{"user.name"},
		Fn:            func(c *ded.Ctx) (ded.Output, error) { return ded.Output{NonPD: 1}, nil }}
	if err := sys.PS().Register(decl2, impl2, false); err != nil {
		return err
	}
	res2, err := sys.PS().Invoke(ps.InvokeRequest{Processing: "purpose2", TypeName: "user"})
	if err != nil {
		return err
	}
	fmt.Printf("  ps_invoke(purpose2): processed=%d filtered=%v — the membrane said no\n",
		res2.Processed, res2.Filtered)

	// Nothing Chiraz typed ever reached the disk in plaintext.
	for _, secret := range []string{"Chiraz Benamor", "correct-horse"} {
		if hits := sys.ResidueScan([]byte(secret)); len(hits) != 0 {
			return fmt.Errorf("plaintext %q on disk: %v", secret, hits)
		}
	}
	fmt.Println("  raw-disk scan: no plaintext PD anywhere (encryption below DBFS)")
	st := sys.Stats()
	fmt.Printf("  stats: %d DBFS inserts, %d bus messages, %d audit entries\n",
		st.DBFS.Inserts, st.Bus.Messages, st.Audit)
	return nil
}
