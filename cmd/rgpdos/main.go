// Command rgpdos boots a simulated rgpdOS machine and runs a demo workload,
// printing the kernel topology, resource partition, enforcement events and
// end-of-run statistics. It is the "boot the paper" entry point.
//
//	rgpdos -subjects 100 -seed 7
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/ded"
	"repro/internal/ps"
	"repro/internal/purpose"
	"repro/internal/typedsl"
	"repro/internal/workload"
	"repro/internal/xrand"
)

const userDSL = `
type user {
  fields {
    name: string,
    pwd: string sensitive,
    year_of_birthdate: int
  };
  view v_name { name };
  view v_ano { age };
  consent {
    purpose1: all,
    purpose2: none,
    purpose3: ano
  };
  collection { web_form: user_form.html };
  origin: subject;
  age: 1Y;
  sensitivity: hight;
}
`

func main() {
	subjects := flag.Int("subjects", 50, "subject population")
	seed := flag.Uint64("seed", 42, "workload seed")
	flag.Parse()
	if err := run(*subjects, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(n int, seed uint64) error {
	fmt.Println("rgpdOS — GDPR enforcement by the operating system (simulated boot)")
	sys, err := core.Boot(core.Options{AuthorityBits: 1024, PDDiskBlocks: 1 << 15, NInodes: 1 << 14})
	if err != nil {
		return err
	}
	fmt.Println("kernel topology (purpose kernel model):")
	for _, k := range sys.Machine().Kernels() {
		fmt.Printf("  %-10s %s\n", k.Name, k.Class)
	}
	fmt.Println("resource partition:")
	for _, s := range sys.Machine().Partition.Shares() {
		fmt.Printf("  %-10s %.1f cpus, %d pages\n", s.Kernel, s.CPUs, s.MemPages)
	}

	alias := typedsl.CompileOptions{FieldAliases: map[string]string{"age": "year_of_birthdate"}}
	if err := sys.DeclareTypesDSL(userDSL, alias); err != nil {
		return err
	}
	form := collect.NewWebFormSource("user_form.html")
	sys.RegisterSource("user", form)
	rng := xrand.New(seed)
	ids := workload.SubjectIDs(n)
	for _, s := range ids {
		form.Submit(s, workload.UserRecord(rng, s))
	}
	got, err := sys.Acquire("user", "web_form", ids)
	if err != nil {
		return err
	}
	fmt.Printf("collected %d subjects through the declared web form\n", got)

	decl := &purpose.Decl{Name: "purpose3", Description: "Compute the age of the input user",
		Basis: purpose.BasisConsent, Reads: []string{"user.year_of_birthdate"}}
	impl := &ded.Func{Name: "compute_age", Purpose: "purpose3",
		DeclaredReads: []string{"user.year_of_birthdate"},
		Fn: func(c *ded.Ctx) (ded.Output, error) {
			yob, err := c.Field("year_of_birthdate")
			if err != nil {
				return ded.Output{}, err
			}
			now, err := c.Now()
			if err != nil {
				return ded.Output{}, err
			}
			return ded.Output{NonPD: int64(now.Year()) - yob.I}, nil
		}}
	if err := sys.PS().Register(decl, impl, false); err != nil {
		return err
	}
	res, err := sys.PS().Invoke(ps.InvokeRequest{Processing: "purpose3", TypeName: "user"})
	if err != nil {
		return err
	}
	fmt.Printf("ps_invoke(purpose3): processed=%d filtered=%v\n", res.Processed, res.Filtered)

	// One subject exercises erasure.
	victim := ids[0]
	rep, err := sys.Rights().Erase(victim)
	if err != nil {
		return err
	}
	fmt.Printf("right to be forgotten for %s: erased %v\n", victim, rep.Erased)
	if hits := sys.ResidueScan([]byte("(" + victim + ")")); len(hits) > 0 {
		fmt.Fprintf(os.Stderr, "VIOLATION: residue at blocks %v\n", hits)
		os.Exit(1)
	}
	fmt.Println("raw-disk residue scan: clean")

	st := sys.Stats()
	fmt.Printf("stats: dbfs=%+v\n", st.DBFS)
	fmt.Printf("       bus: %d messages, %d bytes, %v simulated IPC\n",
		st.Bus.Messages, st.Bus.Bytes, st.Bus.SimLatency)
	fmt.Printf("       audit entries: %d, lsm denials: %d\n", st.Audit, st.Denials)
	return nil
}
