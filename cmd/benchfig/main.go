// Command benchfig regenerates the paper's figures, listings and
// illustration experiments (see DESIGN.md §3 for the index).
//
// Usage:
//
//	benchfig -list
//	benchfig -exp F2V1            # one experiment
//	benchfig -all                 # everything
//	benchfig -all -small          # fast configuration
//	benchfig -exp OV1 -subjects 500 -ops 2000 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiments")
		expID    = flag.String("exp", "", "experiment id to run")
		all      = flag.Bool("all", false, "run every experiment")
		small    = flag.Bool("small", false, "small/fast configuration")
		subjects = flag.Int("subjects", 0, "override subject population")
		ops      = flag.Int("ops", 0, "override operation count")
		seed     = flag.Uint64("seed", 42, "random seed")
		jsonDir  = flag.String("jsondir", "", "directory for BENCH_<ID>.json result files")
	)
	flag.Parse()

	p := bench.Params{Seed: *seed, Subjects: *subjects, Ops: *ops, Small: *small, JSONDir: *jsonDir}
	switch {
	case *list:
		fmt.Println("experiments (id — title — paper artifact):")
		for _, e := range bench.Registry() {
			fmt.Printf("  %-5s %-62s %s\n", e.ID, e.Title, e.Paper)
		}
	case *all:
		if err := bench.RunAll(os.Stdout, p); err != nil {
			fmt.Fprintln(os.Stderr, "benchfig:", err)
			os.Exit(1)
		}
	case *expID != "":
		e, ok := bench.Lookup(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchfig: unknown experiment %q (try -list)\n", *expID)
			os.Exit(2)
		}
		if err := bench.RunOne(os.Stdout, e, p); err != nil {
			fmt.Fprintln(os.Stderr, "benchfig:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
