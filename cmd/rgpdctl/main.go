// Command rgpdctl is the sysadmin tool: it validates PD-type declarations
// and purpose declarations offline, and renders the Fig. 1 dataset.
//
//	rgpdctl types file.rgpd [-alias derived=stored ...]
//	rgpdctl purposes file.purpose
//	rgpdctl fig1
//	rgpdctl fmt file.rgpd      # canonical formatting
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/gdprdata"
	"repro/internal/purpose"
	"repro/internal/typedsl"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "types":
		err = cmdTypes(os.Args[2:])
	case "purposes":
		err = cmdPurposes(os.Args[2:])
	case "fmt":
		err = cmdFmt(os.Args[2:])
	case "fig1":
		err = cmdFig1()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rgpdctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  rgpdctl types <file.rgpd> [alias derived=stored ...]   validate type declarations
  rgpdctl purposes <file.purpose>                        validate purpose declarations
  rgpdctl fmt <file.rgpd>                                print canonical form
  rgpdctl fig1                                           render the Figure 1 dataset`)
}

func readFile(path string) (string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func cmdTypes(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("types: need a file")
	}
	src, err := readFile(args[0])
	if err != nil {
		return err
	}
	opts := typedsl.CompileOptions{FieldAliases: map[string]string{}}
	for _, a := range args[1:] {
		if from, to, ok := strings.Cut(a, "="); ok {
			opts.FieldAliases[from] = to
		}
	}
	schemas, err := typedsl.CompileSource(src, opts)
	if err != nil {
		return err
	}
	for _, sch := range schemas {
		fmt.Printf("type %-16s fields=%d views=%d consents=%d ttl=%v sensitivity=%v origin=%v\n",
			sch.Name, len(sch.Fields), len(sch.Views), len(sch.DefaultConsent),
			sch.DefaultTTL, sch.Sensitivity, sch.Origin)
		for _, f := range sch.Fields {
			marker := ""
			if f.Sensitive {
				marker = "  [sensitive: stored separately]"
			}
			fmt.Printf("  field %-24s %v%s\n", f.Name, f.Type, marker)
		}
	}
	fmt.Printf("ok: %d type(s) valid\n", len(schemas))
	return nil
}

func cmdPurposes(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("purposes: need a file")
	}
	src, err := readFile(args[0])
	if err != nil {
		return err
	}
	decls, err := purpose.Parse(src)
	if err != nil {
		return err
	}
	for _, d := range decls {
		fmt.Printf("purpose %-20s basis=%v reads=%v produces=%q\n  %s\n",
			d.Name, d.Basis, d.Reads, d.Produces, d.Description)
	}
	fmt.Printf("ok: %d purpose(s) valid\n", len(decls))
	return nil
}

func cmdFmt(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("fmt: need a file")
	}
	src, err := readFile(args[0])
	if err != nil {
		return err
	}
	decls, err := typedsl.Parse(src)
	if err != nil {
		return err
	}
	for _, d := range decls {
		fmt.Print(typedsl.Format(d))
	}
	return nil
}

func cmdFig1() error {
	if err := gdprdata.CheckShape(); err != nil {
		return err
	}
	if err := gdprdata.RenderLeft(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return gdprdata.RenderRight(os.Stdout)
}
