// Command rgpdctl is the sysadmin tool: it validates PD-type declarations
// and purpose declarations offline, renders the Fig. 1 dataset, and boots a
// probe machine to report the storage-stack counters.
//
//	rgpdctl types file.rgpd [-alias derived=stored ...]
//	rgpdctl purposes file.purpose
//	rgpdctl fig1
//	rgpdctl fmt file.rgpd      # canonical formatting
//	rgpdctl status             # boot a probe machine, print its counters
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dbfs"
	"repro/internal/gdprdata"
	"repro/internal/purpose"
	"repro/internal/typedsl"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "types":
		err = cmdTypes(os.Args[2:])
	case "purposes":
		err = cmdPurposes(os.Args[2:])
	case "fmt":
		err = cmdFmt(os.Args[2:])
	case "fig1":
		err = cmdFig1()
	case "status":
		err = cmdStatus()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rgpdctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  rgpdctl types <file.rgpd> [alias derived=stored ...]   validate type declarations
  rgpdctl purposes <file.purpose>                        validate purpose declarations
  rgpdctl fmt <file.rgpd>                                print canonical form
  rgpdctl fig1                                           render the Figure 1 dataset
  rgpdctl status                                         boot a probe machine, print its counters`)
}

func readFile(path string) (string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func cmdTypes(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("types: need a file")
	}
	src, err := readFile(args[0])
	if err != nil {
		return err
	}
	opts := typedsl.CompileOptions{FieldAliases: map[string]string{}}
	for _, a := range args[1:] {
		if from, to, ok := strings.Cut(a, "="); ok {
			opts.FieldAliases[from] = to
		}
	}
	schemas, err := typedsl.CompileSource(src, opts)
	if err != nil {
		return err
	}
	for _, sch := range schemas {
		fmt.Printf("type %-16s fields=%d views=%d consents=%d ttl=%v sensitivity=%v origin=%v\n",
			sch.Name, len(sch.Fields), len(sch.Views), len(sch.DefaultConsent),
			sch.DefaultTTL, sch.Sensitivity, sch.Origin)
		for _, f := range sch.Fields {
			marker := ""
			if f.Sensitive {
				marker = "  [sensitive: stored separately]"
			}
			fmt.Printf("  field %-24s %v%s\n", f.Name, f.Type, marker)
		}
	}
	fmt.Printf("ok: %d type(s) valid\n", len(schemas))
	return nil
}

func cmdPurposes(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("purposes: need a file")
	}
	src, err := readFile(args[0])
	if err != nil {
		return err
	}
	decls, err := purpose.Parse(src)
	if err != nil {
		return err
	}
	for _, d := range decls {
		fmt.Printf("purpose %-20s basis=%v reads=%v produces=%q\n  %s\n",
			d.Name, d.Basis, d.Reads, d.Produces, d.Description)
	}
	fmt.Printf("ok: %d purpose(s) valid\n", len(decls))
	return nil
}

func cmdFmt(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("fmt: need a file")
	}
	src, err := readFile(args[0])
	if err != nil {
		return err
	}
	decls, err := typedsl.Parse(src)
	if err != nil {
		return err
	}
	for _, d := range decls {
		fmt.Print(typedsl.Format(d))
	}
	return nil
}

// cmdStatus boots a small machine, runs a short PD + NPD probe workload,
// and prints the storage-stack counters — the quickest way to see the
// journal batching and the block buffer cache doing their jobs.
func cmdStatus() error {
	sys, err := core.Boot(core.Options{
		PDDiskBlocks:  4096,
		NPDDiskBlocks: 1024,
		NInodes:       512,
		JournalBlocks: 64,
		AuthorityBits: 1024,
	})
	if err != nil {
		return err
	}
	if err := sys.CreateType(&dbfs.Schema{
		Name:   "probe",
		Fields: []dbfs.Field{{Name: "name", Type: dbfs.TypeString}},
	}); err != nil {
		return err
	}
	tok := sys.DEDToken()
	for i := 0; i < 4; i++ {
		subject := fmt.Sprintf("subject-%d", i)
		pdid, err := sys.DBFS().Insert(tok, "probe", subject, dbfs.Record{"name": dbfs.S(subject)}, nil)
		if err != nil {
			return err
		}
		if _, err := sys.DBFS().GetRecord(tok, pdid); err != nil {
			return err
		}
	}
	npd := sys.NPD()
	if err := npd.MkdirAll("/probe"); err != nil {
		return err
	}
	if err := npd.WriteFile("/probe/status.txt", []byte("rgpdctl status probe")); err != nil {
		return err
	}
	if _, err := npd.ReadFile("/probe/status.txt"); err != nil {
		return err
	}
	if err := npd.Remove("/probe/status.txt"); err != nil {
		return err
	}

	st := sys.Stats()
	js := sys.DBFS().JournalStats()
	fmt.Printf("dbfs:        types=%d inserts=%d data-reads=%d membrane-reads=%d\n",
		st.DBFS.TypesCreated, st.DBFS.Inserts, st.DBFS.DataReads, st.DBFS.MembraneReads)
	fmt.Printf("block cache: hits=%d misses=%d evictions=%d writebacks=%d\n",
		st.DBFS.BlockCacheHits, st.DBFS.BlockCacheMisses, st.DBFS.BlockCacheEvictions, st.DBFS.BlockWritebacks)
	fmt.Printf("journal:     txns=%d blocks=%d group-commits=%d max-group=%d\n",
		js.TxnsCommitted, js.BlocksLogged, js.GroupCommits, js.MaxGroupTxns)
	fmt.Printf("pd disk:     reads=%d writes=%d syncs=%d\n", st.PDDisk.Reads, st.PDDisk.Writes, st.PDDisk.Syncs)
	fmt.Printf("npd disk:    reads=%d writes=%d syncs=%d\n", st.NPDDisk.Reads, st.NPDDisk.Writes, st.NPDDisk.Syncs)
	fmt.Printf("audit=%d denials=%d\n", st.Audit, st.Denials)
	return nil
}

func cmdFig1() error {
	if err := gdprdata.CheckShape(); err != nil {
		return err
	}
	if err := gdprdata.RenderLeft(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return gdprdata.RenderRight(os.Stdout)
}
