// Command rgpdctl is the sysadmin tool: it validates PD-type declarations
// and purpose declarations offline, renders the Fig. 1 dataset, and boots a
// probe machine to report the storage-stack counters.
//
//	rgpdctl types file.rgpd [-alias derived=stored ...]
//	rgpdctl purposes file.purpose
//	rgpdctl fig1
//	rgpdctl fmt file.rgpd      # canonical formatting
//	rgpdctl status             # boot a probe machine, print its counters
//	rgpdctl tune [knob=value ...]   # apply a tuning document on a probe machine
//	rgpdctl nodes              # boot a probe cluster, show routing + erase propagation
//	rgpdctl macro <scenario>   # run a macro workload scenario, print its scorecard
package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dbfs"
	"repro/internal/gdprdata"
	"repro/internal/purpose"
	"repro/internal/simclock"
	"repro/internal/typedsl"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "types":
		err = cmdTypes(os.Args[2:])
	case "purposes":
		err = cmdPurposes(os.Args[2:])
	case "fmt":
		err = cmdFmt(os.Args[2:])
	case "fig1":
		err = cmdFig1()
	case "status":
		err = cmdStatus()
	case "tune":
		err = cmdTune(os.Args[2:])
	case "nodes":
		err = cmdNodes()
	case "macro":
		err = cmdMacro(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rgpdctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  rgpdctl types <file.rgpd> [alias derived=stored ...]   validate type declarations
  rgpdctl purposes <file.purpose>                        validate purpose declarations
  rgpdctl fmt <file.rgpd>                                print canonical form
  rgpdctl fig1                                           render the Figure 1 dataset
  rgpdctl status                                         boot a probe machine, print its counters
  rgpdctl tune [knob=value ...]                          apply a tuning document on a probe machine
  rgpdctl nodes                                          boot a probe cluster, show routing + erase propagation
  rgpdctl macro <scenario> [seed] [-trace]               run a macro scenario (CI scale), print its scorecard
    knobs: commit_window=2ms group_max_batch=8 admission_max_pending=64 membrane_cache=512
           rights_workers=4 serial_ops=true sweep_interval=30s rate_limit=<purpose>:<rate>:<burst>
           cold_after=1h repack_interval=1m`)
}

func readFile(path string) (string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func cmdTypes(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("types: need a file")
	}
	src, err := readFile(args[0])
	if err != nil {
		return err
	}
	opts := typedsl.CompileOptions{FieldAliases: map[string]string{}}
	for _, a := range args[1:] {
		if from, to, ok := strings.Cut(a, "="); ok {
			opts.FieldAliases[from] = to
		}
	}
	schemas, err := typedsl.CompileSource(src, opts)
	if err != nil {
		return err
	}
	for _, sch := range schemas {
		fmt.Printf("type %-16s fields=%d views=%d consents=%d ttl=%v sensitivity=%v origin=%v\n",
			sch.Name, len(sch.Fields), len(sch.Views), len(sch.DefaultConsent),
			sch.DefaultTTL, sch.Sensitivity, sch.Origin)
		for _, f := range sch.Fields {
			marker := ""
			if f.Sensitive {
				marker = "  [sensitive: stored separately]"
			}
			fmt.Printf("  field %-24s %v%s\n", f.Name, f.Type, marker)
		}
	}
	fmt.Printf("ok: %d type(s) valid\n", len(schemas))
	return nil
}

func cmdPurposes(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("purposes: need a file")
	}
	src, err := readFile(args[0])
	if err != nil {
		return err
	}
	decls, err := purpose.Parse(src)
	if err != nil {
		return err
	}
	for _, d := range decls {
		fmt.Printf("purpose %-20s basis=%v reads=%v produces=%q\n  %s\n",
			d.Name, d.Basis, d.Reads, d.Produces, d.Description)
	}
	fmt.Printf("ok: %d purpose(s) valid\n", len(decls))
	return nil
}

func cmdFmt(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("fmt: need a file")
	}
	src, err := readFile(args[0])
	if err != nil {
		return err
	}
	decls, err := typedsl.Parse(src)
	if err != nil {
		return err
	}
	for _, d := range decls {
		fmt.Print(typedsl.Format(d))
	}
	return nil
}

// probeOpts sizes the small machine status and tune boot. The control
// plane is on so both commands can show live controller state, and the
// cold tier is enabled so status exercises a demote/promote round trip
// and tune lists the repack-interval controller.
func probeOpts() core.Options {
	return core.Options{
		PDDiskBlocks:  4096,
		NPDDiskBlocks: 1024,
		NInodes:       512,
		JournalBlocks: 64,
		AuthorityBits: 1024,
		Control:       true,
		ColdAfter:     time.Hour,
	}
}

// cmdStatus boots a small machine, runs a short PD + NPD probe workload,
// and prints the storage-stack counters — the quickest way to see the
// journal batching, the block buffer cache and the self-tuning control
// plane doing their jobs.
func cmdStatus() error {
	sys, err := core.Boot(probeOpts())
	if err != nil {
		return err
	}
	if err := sys.CreateType(&dbfs.Schema{
		Name:   "probe",
		Fields: []dbfs.Field{{Name: "name", Type: dbfs.TypeString}},
	}); err != nil {
		return err
	}
	tok := sys.DEDToken()
	for i := 0; i < 4; i++ {
		subject := fmt.Sprintf("subject-%d", i)
		pdid, err := sys.DBFS().Insert(tok, "probe", subject, dbfs.Record{"name": dbfs.S(subject)}, nil)
		if err != nil {
			return err
		}
		if _, err := sys.DBFS().GetRecord(tok, pdid); err != nil {
			return err
		}
	}
	npd := sys.NPD()
	if err := npd.MkdirAll("/probe"); err != nil {
		return err
	}
	if err := npd.WriteFile("/probe/status.txt", []byte("rgpdctl status probe")); err != nil {
		return err
	}
	if _, err := npd.ReadFile("/probe/status.txt"); err != nil {
		return err
	}
	if err := npd.Remove("/probe/status.txt"); err != nil {
		return err
	}

	st := sys.Stats()
	js := sys.DBFS().JournalStats()
	fmt.Printf("dbfs:        types=%d inserts=%d data-reads=%d membrane-reads=%d\n",
		st.DBFS.TypesCreated, st.DBFS.Inserts, st.DBFS.DataReads, st.DBFS.MembraneReads)
	fmt.Printf("block cache: hits=%d misses=%d evictions=%d writebacks=%d\n",
		st.DBFS.BlockCacheHits, st.DBFS.BlockCacheMisses, st.DBFS.BlockCacheEvictions, st.DBFS.BlockWritebacks)
	fmt.Printf("journal:     txns=%d blocks=%d group-commits=%d max-group=%d\n",
		js.TxnsCommitted, js.BlocksLogged, js.GroupCommits, js.MaxGroupTxns)
	fmt.Printf("pd disk:     reads=%d writes=%d syncs=%d\n", st.PDDisk.Reads, st.PDDisk.Writes, st.PDDisk.Syncs)
	fmt.Printf("npd disk:    reads=%d writes=%d syncs=%d\n", st.NPDDisk.Reads, st.NPDDisk.Writes, st.NPDDisk.Syncs)
	fmt.Printf("audit=%d denials=%d\n", st.Audit, st.Denials)

	// Age the probe records past the idle threshold, repack them into the
	// compressed cold tier, then read one back (transparent promotion) and
	// capture a membrane snapshot — so the cold counters below are live.
	if sim, ok := sys.SimClock(); ok {
		sim.Advance(2 * sys.DBFS().ColdAfter())
		rp := sys.StartRepacker()
		rp.Sync()
		rp.Stop()
		if _, err := sys.DBFS().GetRecord(tok, "probe/subject-0/1"); err != nil {
			return err
		}
		if _, err := sys.DBFS().SnapshotMembranes(tok, "status-probe"); err != nil {
			return err
		}
	}
	st = sys.Stats()
	fmt.Printf("cold tier:   records=%d demotions=%d promotions=%d dedup-hits=%d snapshots=%d bytes-saved=%d\n",
		st.DBFS.ColdRecords, st.DBFS.Demotions, st.DBFS.Promotions, st.DBFS.ColdDedupHits,
		st.DBFS.SnapshotsTaken, st.DBFS.ColdBytesSaved)

	// A few control ticks over the probe traffic, then the live state.
	for i := 0; i < 3; i++ {
		sys.ControlTick()
	}
	for _, cst := range sys.Controllers() {
		fmt.Printf("control:     %-16s %-10s knob=%-10.2f signal=%-8.3f target=%.3f±%.0f%% adjusts=%d converged=%v\n",
			cst.Name, cst.Mode, cst.Knob, cst.Signal, cst.Target, cst.Band*100, cst.Adjusts, cst.Converged)
	}
	return nil
}

// printTuning renders a full tuning snapshot (all fields non-nil).
func printTuning(t core.Tuning) {
	fmt.Printf("  commit_window=%v group_max_batch=%d membrane_cache=%d rights_workers=%d serial_ops=%v sweep_interval=%v\n",
		*t.CommitWindow, *t.GroupMaxBatch, *t.MembraneCache, *t.RightsWorkers, *t.SerialOps, *t.SweepInterval)
	fmt.Printf("  cold_after=%v repack_interval=%v\n", *t.ColdAfter, *t.RepackInterval)
	if t.AdmissionMaxPending != nil {
		fmt.Printf("  admission_max_pending=%d\n", *t.AdmissionMaxPending)
	}
	for _, rl := range t.RateLimits {
		fmt.Printf("  rate_limit %s: %.1f/s burst %.1f\n", rl.Purpose, rl.RatePerSec, rl.Burst)
	}
}

// parseTuning turns knob=value arguments into a core.Tuning document.
func parseTuning(args []string) (core.Tuning, error) {
	var t core.Tuning
	for _, a := range args {
		k, v, ok := strings.Cut(a, "=")
		if !ok {
			return t, fmt.Errorf("tune: %q is not knob=value", a)
		}
		var err error
		switch k {
		case "commit_window":
			var d time.Duration
			if d, err = time.ParseDuration(v); err == nil {
				t.CommitWindow = &d
			}
		case "group_max_batch":
			var n int
			if n, err = strconv.Atoi(v); err == nil {
				t.GroupMaxBatch = &n
			}
		case "admission_max_pending":
			var n int
			if n, err = strconv.Atoi(v); err == nil {
				t.AdmissionMaxPending = &n
			}
		case "membrane_cache":
			var n int
			if n, err = strconv.Atoi(v); err == nil {
				t.MembraneCache = &n
			}
		case "rights_workers":
			var n int
			if n, err = strconv.Atoi(v); err == nil {
				t.RightsWorkers = &n
			}
		case "serial_ops":
			var b bool
			if b, err = strconv.ParseBool(v); err == nil {
				t.SerialOps = &b
			}
		case "sweep_interval":
			var d time.Duration
			if d, err = time.ParseDuration(v); err == nil {
				t.SweepInterval = &d
			}
		case "cold_after":
			var d time.Duration
			if d, err = time.ParseDuration(v); err == nil {
				t.ColdAfter = &d
			}
		case "repack_interval":
			var d time.Duration
			if d, err = time.ParseDuration(v); err == nil {
				t.RepackInterval = &d
			}
		case "rate_limit":
			parts := strings.Split(v, ":")
			if len(parts) != 3 {
				return t, fmt.Errorf("tune: rate_limit wants <purpose>:<rate>:<burst>, got %q", v)
			}
			var rate, burst float64
			if rate, err = strconv.ParseFloat(parts[1], 64); err == nil {
				if burst, err = strconv.ParseFloat(parts[2], 64); err == nil {
					t.RateLimits = append(t.RateLimits, core.RateLimit{
						Purpose: parts[0], RatePerSec: rate, Burst: burst,
					})
				}
			}
		default:
			return t, fmt.Errorf("tune: unknown knob %q (see usage)", k)
		}
		if err != nil {
			return t, fmt.Errorf("tune: %s: %v", k, err)
		}
	}
	return t, nil
}

// cmdTune boots a probe machine with the control plane on, shows its
// tuning snapshot, and — when knob=value arguments are given — applies
// them as one validated document through System.ApplyTuning, the same API
// the controllers steer through. A document with any invalid knob applies
// nothing.
func cmdTune(args []string) error {
	sys, err := core.Boot(probeOpts())
	if err != nil {
		return err
	}
	fmt.Println("tuning (boot):")
	printTuning(sys.Tuning())
	if len(args) == 0 {
		for _, cst := range sys.Controllers() {
			fmt.Printf("controller:  %-16s %-10s knob=%-10.2f target=%.3f±%.0f%%\n",
				cst.Name, cst.Mode, cst.Knob, cst.Target, cst.Band*100)
		}
		return nil
	}
	doc, err := parseTuning(args)
	if err != nil {
		return err
	}
	if err := sys.ApplyTuning(doc); err != nil {
		return fmt.Errorf("tune: rejected (nothing applied): %w", err)
	}
	fmt.Println("tuning (after ApplyTuning):")
	printTuning(sys.Tuning())
	return nil
}

// cmdNodes boots a small 4-node probe cluster and walks the multi-node
// contract end to end: geometry-independent placement, a cross-node copy
// recorded in the durable ledger, and an Erase whose propagation to a
// briefly-failing copy node completes within one propagation window.
func cmdNodes() error {
	const window = time.Minute
	c, err := cluster.Boot(cluster.Options{
		Nodes: 4,
		Node: core.Options{
			PDDiskBlocks:  4096,
			NPDDiskBlocks: 1024,
			NInodes:       512,
			JournalBlocks: 64,
			AuthorityBits: 1024,
		},
		PropagationWindow: window,
	})
	if err != nil {
		return err
	}
	if err := c.CreateType(&dbfs.Schema{
		Name:   "probe",
		Fields: []dbfs.Field{{Name: "name", Type: dbfs.TypeString}},
	}); err != nil {
		return err
	}

	fmt.Printf("cluster: %d nodes, propagation window %v\n", c.Nodes(), window)
	fmt.Println("placement (home = SubjectHash(subject) mod nodes):")
	subjects := make([]string, 8)
	for i := range subjects {
		s := fmt.Sprintf("subject-%d", i)
		subjects[i] = s
		if _, err := c.Insert("probe", s, dbfs.Record{"name": dbfs.S(s)}); err != nil {
			return err
		}
		fmt.Printf("  %-12s -> node %d (%s)\n", s, c.HomeOf(s), c.Node(c.HomeOf(s)).NodeName())
	}

	// Materialize a cross-node copy of subject-0 on its home's neighbor:
	// the copy is named in the durable ledger before it becomes readable.
	victim := subjects[0]
	pdid, err := c.Insert("probe", victim, dbfs.Record{"name": dbfs.S(victim + "-extra")})
	if err != nil {
		return err
	}
	target := (c.HomeOf(victim) + 1) % c.Nodes()
	copyID, err := c.MaterializeCopy(pdid, target)
	if err != nil {
		return err
	}
	fmt.Printf("copy: %s materialized on node %d as %s\n", pdid, target, copyID)
	for _, e := range c.LedgerFor(victim) {
		fmt.Printf("ledger: subject=%s pdid=%s node=%d home=%d origin=%s\n",
			e.Subject, e.PDID, e.Node, e.Home, e.Origin)
	}

	status, err := c.Status()
	if err != nil {
		return err
	}
	for _, st := range status {
		fmt.Printf("node %d (%s): subjects=%d copies-held=%d copies-tracked=%d pending-syncs=%d\n",
			st.Index, st.Name, st.Subjects, st.CopiesHeld, st.CopiesTracked, st.PendingSyncs)
	}

	// Erase the copied subject while its copy node drops the first fan-out
	// attempt, then let the propagator finish the job one window later.
	c.FailNode(target, 1)
	rep, err := c.Erase(victim)
	if err != nil {
		return err
	}
	fmt.Printf("erase: %s shredded %d pdid(s) on home node %d; fan-out ok=%v pending=%d\n",
		rep.SubjectID, len(rep.Erased), rep.Home, rep.Fanout.OK(), c.PendingSyncs())
	prop := c.StartPropagator()
	if sim, ok := c.Node(0).SimClock(); ok {
		sim.Advance(window + time.Second)
	}
	prop.Sync()
	prop.Stop()
	tn := c.Node(target)
	_, readErr := tn.DBFS().GetRecord(tn.DEDToken(), copyID)
	fmt.Printf("after one window: copy readable=%v ledger entries=%d pending=%d (retried=%d)\n",
		readErr == nil, len(c.LedgerFor(victim)), c.PendingSyncs(), prop.Stats().Retried)
	if readErr == nil || c.PendingSyncs() != 0 {
		return fmt.Errorf("nodes: erasure did not propagate within one window")
	}
	fmt.Println("ok: every ledger-named copy dead within one propagation window")
	return nil
}

func cmdFig1() error {
	if err := gdprdata.CheckShape(); err != nil {
		return err
	}
	if err := gdprdata.RenderLeft(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return gdprdata.RenderRight(os.Stdout)
}

// cmdMacro runs one macro scenario at CI scale on a fresh probe machine
// and prints its scorecard; with -trace it prints the deterministic op
// trace instead of executing it.
func cmdMacro(args []string) error {
	seed := uint64(42)
	trace := false
	var name string
	for _, a := range args {
		switch {
		case a == "-trace":
			trace = true
		case name == "":
			name = a
		default:
			n, err := strconv.ParseUint(a, 10, 64)
			if err != nil {
				return fmt.Errorf("macro: bad seed %q: %w", a, err)
			}
			seed = n
		}
	}
	names := make([]string, 0, 3)
	for _, sc := range workload.Scenarios() {
		names = append(names, sc.Name)
	}
	if name == "" {
		return fmt.Errorf("macro: usage: rgpdctl macro <scenario> [seed] [-trace] — scenarios: %s",
			strings.Join(names, ", "))
	}
	sc, ok := workload.LookupScenario(name)
	if !ok {
		return fmt.Errorf("macro: unknown scenario %q (scenarios: %s)", name, strings.Join(names, ", "))
	}
	mix := sc.MixFor(true)
	ops, err := workload.Generate(mix, seed)
	if err != nil {
		return err
	}
	if trace {
		_, err := os.Stdout.Write(workload.EncodeTrace(ops))
		return err
	}
	blocks, npdBlocks, inodes := workload.BootSizing(mix, ops)
	sys, err := core.Boot(core.Options{
		Clock:         simclock.NewSim(simclock.Epoch),
		CryptoRand:    xrand.NewReader(seed),
		AuthorityBits: 1024,
		PDDiskBlocks:  blocks,
		NPDDiskBlocks: npdBlocks,
		NInodes:       inodes,
		JournalBlocks: 256,
		Workers:       2,
	})
	if err != nil {
		return err
	}
	card, err := workload.RunScenario(workload.NewSystemTarget(sys), sc,
		workload.RunConfig{Seed: seed, Small: true, Pace: true})
	if err != nil {
		return err
	}
	workload.WriteScorecard(os.Stdout, card)
	if !card.Clean() {
		return fmt.Errorf("macro: regulator invariants violated")
	}
	return nil
}
