// Command benchgate is the CI bench-regression gate: it compares a freshly
// generated BENCH_SC2.json against the checked-in BENCH_baseline.json and
// fails (exit 1) when the measured group-commit + per-shard-FS speedup has
// regressed by more than the allowed fraction.
//
// The baseline's best_speedup is a conservative floor (not one machine's
// maximum), so the gate is portable across runners with different sleep
// granularity: what it protects is the refactor's headline property —
// concurrent insert throughput well above the single-journal,
// one-transaction-per-flush PR-1 configuration.
//
// Usage:
//
//	benchgate -baseline BENCH_baseline.json -current out/BENCH_SC2.json [-max-regress 0.20]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func load(path string) (*bench.SC2Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r bench.SC2Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("decode %s: %w", path, err)
	}
	if r.Experiment != "SC2" || len(r.Rows) == 0 {
		return nil, fmt.Errorf("%s: not an SC2 report", path)
	}
	return &r, nil
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "checked-in baseline report")
		currentPath  = flag.String("current", "BENCH_SC2.json", "freshly generated report")
		maxRegress   = flag.Float64("max-regress", 0.20, "allowed fractional regression of best_speedup")
	)
	flag.Parse()

	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cur, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	floor := base.Summary.BestSpeedup * (1 - *maxRegress)
	fmt.Printf("benchgate: baseline best_speedup=%.2fx (%s), current best_speedup=%.2fx (%s), floor=%.2fx\n",
		base.Summary.BestSpeedup, base.Summary.BestConfig,
		cur.Summary.BestSpeedup, cur.Summary.BestConfig, floor)
	if cur.Summary.BestSpeedup < floor {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL — concurrent insert speedup regressed more than %.0f%%\n", *maxRegress*100)
		os.Exit(1)
	}
	fmt.Println("benchgate: OK")
}
