// Command benchgate is the CI bench-regression gate: it compares the
// freshly generated BENCH_<ID>.json result files against the checked-in
// BENCH_baseline.json and fails (exit 1) when a gated summary metric has
// regressed by more than the allowed fraction.
//
// The baseline (schema 2) holds one entry per gated experiment under
// "experiments"; each entry's summary metrics are conservative floors (not
// one machine's maximum), so the gate is portable across runners with
// different sleep granularity. What it protects are the headline scaling
// properties: SC2's group-commit + per-shard-FS insert speedup, and SC3's
// membrane-cache read speedup plus the parallel rights-engine scaling.
//
// A baseline entry with no generated result — or a generated result with no
// baseline entry — is a configuration error (exit 2) named after the
// experiment, never a silent skip: a gate that quietly stops comparing is a
// gate that quietly stops gating.
//
// Usage:
//
//	benchgate -baseline BENCH_baseline.json -results bench-out [-max-regress 0.20]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/bench"
)

// baselineFile is the schema-2 layout of BENCH_baseline.json.
type baselineFile struct {
	Schema      int                        `json:"schema"`
	Comment     string                     `json:"comment,omitempty"`
	Experiments map[string]json.RawMessage `json:"experiments"`
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(2)
}

// checkFloor compares one summary metric against its baseline floor and
// returns false (after printing the failure) on regression. A baseline
// metric of zero means the field is absent or mistyped in the baseline —
// that would make the floor 0 and the gate a silent no-op, so it is a
// configuration error, not a pass.
func checkFloor(exp, metric string, base, cur, maxRegress float64) bool {
	if base <= 0 {
		fatalf("experiment %s: baseline summary metric %q is %.2f — absent or mistyped in the baseline, which would disable the gate",
			exp, metric, base)
	}
	floor := base * (1 - maxRegress)
	fmt.Printf("benchgate: %s %-24s baseline=%.2fx current=%.2fx floor=%.2fx\n",
		exp, metric, base, cur, floor)
	if cur < floor {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL — %s %s regressed more than %.0f%% (%.2fx < %.2fx)\n",
			exp, metric, maxRegress*100, cur, floor)
		return false
	}
	return true
}

// gateSC2 compares the SC2 storage-stack speedup.
func gateSC2(baseRaw json.RawMessage, curPath string, maxRegress float64) bool {
	var base, cur bench.SC2Report
	decodeReport(baseRaw, "baseline", "SC2", &base)
	decodeFile(curPath, "SC2", &cur)
	if base.Experiment != "SC2" || len(base.Rows) == 0 || cur.Experiment != "SC2" || len(cur.Rows) == 0 {
		fatalf("experiment SC2: malformed report (baseline or %s)", curPath)
	}
	return checkFloor("SC2", "best_speedup", base.Summary.BestSpeedup, cur.Summary.BestSpeedup, maxRegress)
}

// gateSC3 compares the read-path speedups: the membrane-cache ablation and
// the parallel rights-engine scaling.
func gateSC3(baseRaw json.RawMessage, curPath string, maxRegress float64) bool {
	var base, cur bench.SC3Report
	decodeReport(baseRaw, "baseline", "SC3", &base)
	decodeFile(curPath, "SC3", &cur)
	if base.Experiment != "SC3" || len(base.Rows) == 0 || cur.Experiment != "SC3" || len(cur.Rows) == 0 {
		fatalf("experiment SC3: malformed report (baseline or %s)", curPath)
	}
	ok := true
	ok = checkFloor("SC3", "cache_speedup_disjoint", base.Summary.CacheSpeedupDisjoint, cur.Summary.CacheSpeedupDisjoint, maxRegress) && ok
	ok = checkFloor("SC3", "cache_speedup_overlap", base.Summary.CacheSpeedupOverlap, cur.Summary.CacheSpeedupOverlap, maxRegress) && ok
	ok = checkFloor("SC3", "access_speedup", base.Summary.AccessSpeedup, cur.Summary.AccessSpeedup, maxRegress) && ok
	ok = checkFloor("SC3", "sweep_speedup", base.Summary.SweepSpeedup, cur.Summary.SweepSpeedup, maxRegress) && ok
	return ok
}

func decodeReport(raw json.RawMessage, src, exp string, v any) {
	if err := json.Unmarshal(raw, v); err != nil {
		fatalf("experiment %s: decode %s entry: %v", exp, src, err)
	}
}

func decodeFile(path, exp string, v any) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fatalf("experiment %s: %v", exp, err)
	}
	if err := json.Unmarshal(raw, v); err != nil {
		fatalf("experiment %s: decode %s: %v", exp, path, err)
	}
}

// gates maps experiment id to its comparison; adding a gated experiment
// means adding a row here AND an entry to BENCH_baseline.json.
var gates = map[string]func(json.RawMessage, string, float64) bool{
	"SC2": gateSC2,
	"SC3": gateSC3,
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "checked-in baseline file (schema 2)")
		resultsDir   = flag.String("results", "bench-out", "directory holding freshly generated BENCH_<ID>.json files")
		maxRegress   = flag.Float64("max-regress", 0.20, "allowed fractional regression of each gated summary metric")
	)
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatalf("%v", err)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fatalf("decode %s: %v", *baselinePath, err)
	}
	if base.Schema != 2 || len(base.Experiments) == 0 {
		fatalf("%s: unsupported baseline schema %d (want 2 with an \"experiments\" map — regenerate it)",
			*baselinePath, base.Schema)
	}

	// Enumerate the generated results.
	entries, err := os.ReadDir(*resultsDir)
	if err != nil {
		fatalf("%v", err)
	}
	currents := make(map[string]string)
	for _, e := range entries {
		name := e.Name()
		if id, ok := strings.CutPrefix(name, "BENCH_"); ok && strings.HasSuffix(id, ".json") {
			currents[strings.TrimSuffix(id, ".json")] = filepath.Join(*resultsDir, name)
		}
	}

	// Every baseline entry must have a generated result, a registered gate,
	// and vice versa — name the experiment on any mismatch.
	baseIDs := make([]string, 0, len(base.Experiments))
	for id := range base.Experiments {
		baseIDs = append(baseIDs, id)
	}
	sort.Strings(baseIDs)
	for _, id := range baseIDs {
		if _, ok := gates[id]; !ok {
			fatalf("experiment %s: baseline entry has no registered gate (known: SC2, SC3)", id)
		}
		if _, ok := currents[id]; !ok {
			fatalf("experiment %s: baseline entry present but %s was not generated — run `go run ./cmd/benchfig -exp %s -small -jsondir %s`",
				id, filepath.Join(*resultsDir, "BENCH_"+id+".json"), id, *resultsDir)
		}
	}
	curIDs := make([]string, 0, len(currents))
	for id := range currents {
		curIDs = append(curIDs, id)
	}
	sort.Strings(curIDs)
	ok := true
	for _, id := range curIDs {
		if _, inBase := base.Experiments[id]; !inBase {
			fatalf("experiment %s: %s generated but %s has no entry for it — append the experiment to the baseline",
				id, currents[id], *baselinePath)
		}
		ok = gates[id](base.Experiments[id], currents[id], *maxRegress) && ok
	}
	if !ok {
		os.Exit(1)
	}
	fmt.Println("benchgate: OK")
}
