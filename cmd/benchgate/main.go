// Command benchgate is the CI bench-regression gate: it compares the
// freshly generated BENCH_<ID>.json result files against the checked-in
// BENCH_baseline.json and fails (exit 1) when a gated summary metric has
// regressed by more than the allowed fraction.
//
// The baseline (schema 2) holds one entry per gated experiment under
// "experiments"; each entry's summary metrics are conservative floors (not
// one machine's maximum), so the gate is portable across runners with
// different sleep granularity. What it protects are the headline scaling
// properties: SC2's group-commit + per-shard-FS insert speedup, SC3's
// membrane-cache read speedup plus the parallel rights-engine scaling,
// SC4's admission-controlled goodput ratio past saturation, SC5's
// actor-core contention speedup plus the block cache's read absorption,
// SC6's control-plane convergence/band/oscillation invariants, SC7's
// cold-tier footprint/shred-safety contract, SC8's multi-node routing
// speedups plus the cross-node erasure-propagation invariants, and SC9's
// per-op-class macro throughput floors and p99 ceilings plus the exact
// regulator invariants (zero residue, zero erased-readable, zero consent
// mismatches).
//
// A baseline entry with no generated result — or a generated result with no
// baseline entry — is a configuration error (exit 2) named after the
// experiment, never a silent skip: a gate that quietly stops comparing is a
// gate that quietly stops gating.
//
// Usage:
//
//	benchgate -baseline BENCH_baseline.json -results bench-out [-max-regress 0.20]
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/bench"
)

// baselineFile is the schema-2 layout of BENCH_baseline.json.
type baselineFile struct {
	Schema      int                        `json:"schema"`
	Comment     string                     `json:"comment,omitempty"`
	Experiments map[string]json.RawMessage `json:"experiments"`
}

// errRegression reports a gated metric below its floor (exit 1); every
// configuration problem — malformed baseline, missing result, missing
// baseline entry, zero floor — is a configError (exit 2).
var errRegression = errors.New("benchgate: gated metric regressed")

type configError struct{ msg string }

func (e *configError) Error() string { return "benchgate: " + e.msg }

func confErrf(format string, args ...any) error {
	return &configError{msg: fmt.Sprintf(format, args...)}
}

// checkFloor compares one summary metric against its baseline floor and
// reports false (after printing the failure) on regression. A baseline
// metric of zero means the field is absent or mistyped in the baseline —
// that would make the floor 0 and the gate a silent no-op, so it is a
// configuration error, not a pass.
func checkFloor(out io.Writer, exp, metric string, base, cur, maxRegress float64) (bool, error) {
	if base <= 0 {
		return false, confErrf("experiment %s: baseline summary metric %q is %.2f — absent or mistyped in the baseline, which would disable the gate",
			exp, metric, base)
	}
	floor := base * (1 - maxRegress)
	fmt.Fprintf(out, "benchgate: %s %-24s baseline=%.2fx current=%.2fx floor=%.2fx\n",
		exp, metric, base, cur, floor)
	if cur < floor {
		fmt.Fprintf(out, "benchgate: FAIL — %s %s regressed more than %.0f%% (%.2fx < %.2fx)\n",
			exp, metric, maxRegress*100, cur, floor)
		return false, nil
	}
	return true, nil
}

// checkCeiling is checkFloor's dual for lower-is-better metrics (cost
// ratios): the current value must stay under baseline * (1 + maxRegress).
// A zero baseline would again disable the gate, so it is a configuration
// error.
func checkCeiling(out io.Writer, exp, metric string, base, cur, maxRegress float64) (bool, error) {
	if base <= 0 {
		return false, confErrf("experiment %s: baseline summary metric %q is %.2f — absent or mistyped in the baseline, which would disable the gate",
			exp, metric, base)
	}
	ceil := base * (1 + maxRegress)
	fmt.Fprintf(out, "benchgate: %s %-24s baseline=%.2f current=%.2f ceiling=%.2f\n",
		exp, metric, base, cur, ceil)
	if cur > ceil {
		fmt.Fprintf(out, "benchgate: FAIL — %s %s grew more than %.0f%% (%.2f > %.2f)\n",
			exp, metric, maxRegress*100, cur, ceil)
		return false, nil
	}
	return true, nil
}

// checkInvariant is for correctness properties that are pass/fail, not
// floors: the current run must hold them regardless of regress margin.
func checkInvariant(out io.Writer, exp, name string, held bool) bool {
	fmt.Fprintf(out, "benchgate: %s %-24s invariant=%v\n", exp, name, held)
	if !held {
		fmt.Fprintf(out, "benchgate: FAIL — %s invariant %s does not hold\n", exp, name)
	}
	return held
}

// gateSC2 compares the SC2 storage-stack speedup.
func gateSC2(out io.Writer, baseRaw json.RawMessage, curPath string, maxRegress float64) (bool, error) {
	var base, cur bench.SC2Report
	if err := decodeReport(baseRaw, "baseline", "SC2", &base); err != nil {
		return false, err
	}
	if err := decodeFile(curPath, "SC2", &cur); err != nil {
		return false, err
	}
	if base.Experiment != "SC2" || len(base.Rows) == 0 || cur.Experiment != "SC2" || len(cur.Rows) == 0 {
		return false, confErrf("experiment SC2: malformed report (baseline or %s)", curPath)
	}
	return checkFloor(out, "SC2", "best_speedup", base.Summary.BestSpeedup, cur.Summary.BestSpeedup, maxRegress)
}

// gateSC3 compares the read-path speedups: the membrane-cache ablation and
// the parallel rights-engine scaling.
func gateSC3(out io.Writer, baseRaw json.RawMessage, curPath string, maxRegress float64) (bool, error) {
	var base, cur bench.SC3Report
	if err := decodeReport(baseRaw, "baseline", "SC3", &base); err != nil {
		return false, err
	}
	if err := decodeFile(curPath, "SC3", &cur); err != nil {
		return false, err
	}
	if base.Experiment != "SC3" || len(base.Rows) == 0 || cur.Experiment != "SC3" || len(cur.Rows) == 0 {
		return false, confErrf("experiment SC3: malformed report (baseline or %s)", curPath)
	}
	ok := true
	for _, m := range []struct {
		name      string
		base, cur float64
	}{
		{"cache_speedup_disjoint", base.Summary.CacheSpeedupDisjoint, cur.Summary.CacheSpeedupDisjoint},
		{"cache_speedup_overlap", base.Summary.CacheSpeedupOverlap, cur.Summary.CacheSpeedupOverlap},
		{"access_speedup", base.Summary.AccessSpeedup, cur.Summary.AccessSpeedup},
		{"sweep_speedup", base.Summary.SweepSpeedup, cur.Summary.SweepSpeedup},
	} {
		mok, err := checkFloor(out, "SC3", m.name, m.base, m.cur, maxRegress)
		if err != nil {
			return false, err
		}
		ok = mok && ok
	}
	return ok, nil
}

// gateSC4 compares the admission-control headline: the fraction of
// pre-saturation goodput the controlled machine sustains at 2x offered
// load.
func gateSC4(out io.Writer, baseRaw json.RawMessage, curPath string, maxRegress float64) (bool, error) {
	var base, cur bench.SC4Report
	if err := decodeReport(baseRaw, "baseline", "SC4", &base); err != nil {
		return false, err
	}
	if err := decodeFile(curPath, "SC4", &cur); err != nil {
		return false, err
	}
	if base.Experiment != "SC4" || len(base.Rows) == 0 || cur.Experiment != "SC4" || len(cur.Rows) == 0 {
		return false, confErrf("experiment SC4: malformed report (baseline or %s)", curPath)
	}
	return checkFloor(out, "SC4", "controlled_goodput_ratio",
		base.Summary.ControlledGoodputRatio, cur.Summary.ControlledGoodputRatio, maxRegress)
}

// gateSC5 compares the intra-shard storage-core headline metrics: the
// actor-vs-serial contention speedup and the buffer cache's hot re-read
// absorption ratio.
func gateSC5(out io.Writer, baseRaw json.RawMessage, curPath string, maxRegress float64) (bool, error) {
	var base, cur bench.SC5Report
	if err := decodeReport(baseRaw, "baseline", "SC5", &base); err != nil {
		return false, err
	}
	if err := decodeFile(curPath, "SC5", &cur); err != nil {
		return false, err
	}
	if base.Experiment != "SC5" || len(base.Rows) == 0 || cur.Experiment != "SC5" || len(cur.Rows) == 0 {
		return false, confErrf("experiment SC5: malformed report (baseline or %s)", curPath)
	}
	ok := true
	for _, m := range []struct {
		name      string
		base, cur float64
	}{
		{"contention_speedup", base.Summary.ContentionSpeedup, cur.Summary.ContentionSpeedup},
		{"read_absorption", base.Summary.ReadAbsorption, cur.Summary.ReadAbsorption},
	} {
		mok, err := checkFloor(out, "SC5", m.name, m.base, m.cur, maxRegress)
		if err != nil {
			return false, err
		}
		ok = mok && ok
	}
	return ok, nil
}

// gateSC6 compares the control-plane headline: all four controllers
// re-converge after each load step (controllers_converged), land within
// their band of the hand-tuned static optimum (within_band), and hold
// still afterwards (amplitude_bounded). SC6 is fully deterministic (pure
// arithmetic on a sim clock), so these are expected to match the baseline
// exactly; the regress margin only absorbs a deliberate retune.
func gateSC6(out io.Writer, baseRaw json.RawMessage, curPath string, maxRegress float64) (bool, error) {
	var base, cur bench.SC6Report
	if err := decodeReport(baseRaw, "baseline", "SC6", &base); err != nil {
		return false, err
	}
	if err := decodeFile(curPath, "SC6", &cur); err != nil {
		return false, err
	}
	if base.Experiment != "SC6" || len(base.Rows) == 0 || cur.Experiment != "SC6" || len(cur.Rows) == 0 {
		return false, confErrf("experiment SC6: malformed report (baseline or %s)", curPath)
	}
	ok := true
	for _, m := range []struct {
		name      string
		base, cur float64
	}{
		{"controllers_converged", base.Summary.ControllersConverged, cur.Summary.ControllersConverged},
		{"within_band", base.Summary.WithinBand, cur.Summary.WithinBand},
		{"amplitude_bounded", base.Summary.AmplitudeBounded, cur.Summary.AmplitudeBounded},
	} {
		mok, err := checkFloor(out, "SC6", m.name, m.base, m.cur, maxRegress)
		if err != nil {
			return false, err
		}
		ok = mok && ok
	}
	return ok, nil
}

// gateSC7 compares the cold-tier headline: the archive footprint
// reduction holds its floor, the hot-path device-op ratio and per-record
// promotion cost stay under their ceilings, re-demotion still dedups, and
// the shred-safety properties hold exactly — they are correctness
// invariants (a shredded record's archived and snapshotted copies decode
// to nothing, zero plaintext residue), so no regress margin applies.
func gateSC7(out io.Writer, baseRaw json.RawMessage, curPath string, maxRegress float64) (bool, error) {
	var base, cur bench.SC7Report
	if err := decodeReport(baseRaw, "baseline", "SC7", &base); err != nil {
		return false, err
	}
	if err := decodeFile(curPath, "SC7", &cur); err != nil {
		return false, err
	}
	if base.Experiment != "SC7" || len(base.Rows) == 0 || cur.Experiment != "SC7" || len(cur.Rows) == 0 {
		return false, confErrf("experiment SC7: malformed report (baseline or %s)", curPath)
	}
	ok := true
	for _, m := range []struct {
		name      string
		base, cur float64
	}{
		{"footprint_ratio", base.Summary.FootprintRatio, cur.Summary.FootprintRatio},
		{"redemotion_dedup_hits", float64(base.Summary.RedemotionDedupHits), float64(cur.Summary.RedemotionDedupHits)},
	} {
		mok, err := checkFloor(out, "SC7", m.name, m.base, m.cur, maxRegress)
		if err != nil {
			return false, err
		}
		ok = mok && ok
	}
	for _, m := range []struct {
		name      string
		base, cur float64
	}{
		{"hot_path_ops_ratio", base.Summary.HotPathOpsRatio, cur.Summary.HotPathOpsRatio},
		{"promote_ops_per_record", base.Summary.PromoteOpsPerRecord, cur.Summary.PromoteOpsPerRecord},
	} {
		mok, err := checkCeiling(out, "SC7", m.name, m.base, m.cur, maxRegress)
		if err != nil {
			return false, err
		}
		ok = mok && ok
	}
	ok = checkInvariant(out, "SC7", "archive_undecodable", cur.Summary.ArchiveUndecodable) && ok
	ok = checkInvariant(out, "SC7", "snapshot_undecodable", cur.Summary.SnapshotUndecodable) && ok
	ok = checkInvariant(out, "SC7", "plaintext_residue_zero", cur.Summary.PlaintextResidueHits == 0) && ok
	ok = checkInvariant(out, "SC7", "redemotion_no_new_bytes", cur.Summary.RedemotionNewBytes == 0) && ok
	return ok, nil
}

func decodeReport(raw json.RawMessage, src, exp string, v any) error {
	if err := json.Unmarshal(raw, v); err != nil {
		return confErrf("experiment %s: decode %s entry: %v", exp, src, err)
	}
	return nil
}

func decodeFile(path, exp string, v any) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return confErrf("experiment %s: %v", exp, err)
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return confErrf("experiment %s: decode %s: %v", exp, path, err)
	}
	return nil
}

// gateSC8 compares the multi-node routing headline: the insert and
// subject-access speedups at 2 and 4 nodes hold their floors (the
// baseline values are conservative — 2.0 and 3.125 — so the effective
// floors after the regress margin are 1.6x and 2.5x), and the copy-ledger
// contract holds exactly: after an erase with one copy-holding node
// failing the first fan-out, every ledger-named remote copy is dead within
// one propagation window, the ledger is drained, the deferred sync was
// retried inside the window, and no node holds plaintext residue.
func gateSC8(out io.Writer, baseRaw json.RawMessage, curPath string, maxRegress float64) (bool, error) {
	var base, cur bench.SC8Report
	if err := decodeReport(baseRaw, "baseline", "SC8", &base); err != nil {
		return false, err
	}
	if err := decodeFile(curPath, "SC8", &cur); err != nil {
		return false, err
	}
	if base.Experiment != "SC8" || len(base.Rows) == 0 || cur.Experiment != "SC8" || len(cur.Rows) == 0 {
		return false, confErrf("experiment SC8: malformed report (baseline or %s)", curPath)
	}
	ok := true
	for _, m := range []struct {
		name      string
		base, cur float64
	}{
		{"insert_speedup_2", base.Summary.InsertSpeedup2, cur.Summary.InsertSpeedup2},
		{"insert_speedup_4", base.Summary.InsertSpeedup4, cur.Summary.InsertSpeedup4},
		{"access_speedup_2", base.Summary.AccessSpeedup2, cur.Summary.AccessSpeedup2},
		{"access_speedup_4", base.Summary.AccessSpeedup4, cur.Summary.AccessSpeedup4},
	} {
		mok, err := checkFloor(out, "SC8", m.name, m.base, m.cur, maxRegress)
		if err != nil {
			return false, err
		}
		ok = mok && ok
	}
	ok = checkInvariant(out, "SC8", "erase_propagated", cur.Summary.ErasePropagated) && ok
	ok = checkInvariant(out, "SC8", "ledger_drained", cur.Summary.LedgerDrained) && ok
	ok = checkInvariant(out, "SC8", "retried_within_window", cur.Summary.RetriedWithinWindow) && ok
	ok = checkInvariant(out, "SC8", "remote_residue_zero", cur.Summary.RemoteResidueHits == 0) && ok
	return ok, nil
}

// gateSC9 compares the macro-workload scorecards. For every baseline
// (scenario, op class) row the current run must hold the per-class
// throughput floor and p99 ceiling, and every scenario must hold the exact
// regulator invariants: zero plaintext residue over a non-empty erased
// sample, zero erased-but-readable records, zero consent-inconsistent
// access exports over a non-empty check — correctness, so no regress
// margin applies. SC9 is fully deterministic (simclock pacing, simulated
// device-op latency), so the numeric metrics are expected to match the
// baseline exactly; the margin only absorbs a deliberate retune.
func gateSC9(out io.Writer, baseRaw json.RawMessage, curPath string, maxRegress float64) (bool, error) {
	var base, cur bench.SC9Report
	if err := decodeReport(baseRaw, "baseline", "SC9", &base); err != nil {
		return false, err
	}
	if err := decodeFile(curPath, "SC9", &cur); err != nil {
		return false, err
	}
	if base.Experiment != "SC9" || len(base.Scenarios) == 0 || cur.Experiment != "SC9" || len(cur.Scenarios) == 0 {
		return false, confErrf("experiment SC9: malformed report (baseline or %s)", curPath)
	}
	curScen := make(map[string]int, len(cur.Scenarios))
	for i, cs := range cur.Scenarios {
		curScen[cs.Scenario] = i
	}
	ok := true
	for _, bs := range base.Scenarios {
		ci, found := curScen[bs.Scenario]
		if !found {
			return false, confErrf("experiment SC9: scenario %s in baseline but absent from %s", bs.Scenario, curPath)
		}
		cs := cur.Scenarios[ci]
		curRows := make(map[string]int, len(cs.Classes))
		for i, row := range cs.Classes {
			curRows[row.Class] = i
		}
		for _, brow := range bs.Classes {
			ri, found := curRows[brow.Class]
			if !found {
				return false, confErrf("experiment SC9: scenario %s class %s in baseline but absent from %s",
					bs.Scenario, brow.Class, curPath)
			}
			crow := cs.Classes[ri]
			name := bs.Scenario + "/" + brow.Class
			mok, err := checkFloor(out, "SC9", name+" ops/s", brow.OpsPerSec, crow.OpsPerSec, maxRegress)
			if err != nil {
				return false, err
			}
			ok = mok && ok
			mok, err = checkCeiling(out, "SC9", name+" p99us", float64(brow.P99us), float64(crow.P99us), maxRegress)
			if err != nil {
				return false, err
			}
			ok = mok && ok
		}
		inv := cs.Invariants
		ok = checkInvariant(out, "SC9", bs.Scenario+" residue_zero",
			inv.ResidueHits == 0 && inv.ResidueChecked > 0) && ok
		ok = checkInvariant(out, "SC9", bs.Scenario+" erased_unreadable", inv.ErasedReadable == 0) && ok
		ok = checkInvariant(out, "SC9", bs.Scenario+" consent_consistent",
			inv.ConsentMismatches == 0 && inv.AccessChecked > 0) && ok
		if bs.Invariants.SweptRecords > 0 {
			ok = checkInvariant(out, "SC9", bs.Scenario+" retention_swept", inv.SweptRecords > 0) && ok
		}
	}
	return ok, nil
}

// gates maps experiment id to its comparison; adding a gated experiment
// means adding a row here AND an entry to BENCH_baseline.json.
var gates = map[string]func(io.Writer, json.RawMessage, string, float64) (bool, error){
	"SC2": gateSC2,
	"SC3": gateSC3,
	"SC4": gateSC4,
	"SC5": gateSC5,
	"SC6": gateSC6,
	"SC7": gateSC7,
	"SC8": gateSC8,
	"SC9": gateSC9,
}

// run executes the whole gate. It returns nil when every gated metric
// holds, errRegression when one regressed (failure text already printed to
// out), or a *configError for any configuration problem.
func run(baselinePath, resultsDir string, maxRegress float64, out io.Writer) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return confErrf("%v", err)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return confErrf("decode %s: %v", baselinePath, err)
	}
	if base.Schema != 2 || len(base.Experiments) == 0 {
		return confErrf("%s: unsupported baseline schema %d (want 2 with an \"experiments\" map — regenerate it)",
			baselinePath, base.Schema)
	}

	// Enumerate the generated results.
	entries, err := os.ReadDir(resultsDir)
	if err != nil {
		return confErrf("%v", err)
	}
	currents := make(map[string]string)
	for _, e := range entries {
		name := e.Name()
		if id, ok := strings.CutPrefix(name, "BENCH_"); ok && strings.HasSuffix(id, ".json") {
			currents[strings.TrimSuffix(id, ".json")] = filepath.Join(resultsDir, name)
		}
	}

	// Every baseline entry must have a generated result, a registered gate,
	// and vice versa — name the experiment on any mismatch.
	baseIDs := make([]string, 0, len(base.Experiments))
	for id := range base.Experiments {
		baseIDs = append(baseIDs, id)
	}
	sort.Strings(baseIDs)
	for _, id := range baseIDs {
		if _, ok := gates[id]; !ok {
			known := make([]string, 0, len(gates))
			for k := range gates {
				known = append(known, k)
			}
			sort.Strings(known)
			return confErrf("experiment %s: baseline entry has no registered gate (known: %s)", id, strings.Join(known, ", "))
		}
		if _, ok := currents[id]; !ok {
			return confErrf("experiment %s: baseline entry present but %s was not generated — run `go run ./cmd/benchfig -exp %s -small -jsondir %s`",
				id, filepath.Join(resultsDir, "BENCH_"+id+".json"), id, resultsDir)
		}
	}
	curIDs := make([]string, 0, len(currents))
	for id := range currents {
		curIDs = append(curIDs, id)
	}
	sort.Strings(curIDs)
	ok := true
	for _, id := range curIDs {
		if _, inBase := base.Experiments[id]; !inBase {
			return confErrf("experiment %s: %s generated but %s has no entry for it — append the experiment to the baseline",
				id, currents[id], baselinePath)
		}
		idOK, err := gates[id](out, base.Experiments[id], currents[id], maxRegress)
		if err != nil {
			return err
		}
		ok = idOK && ok
	}
	if !ok {
		return errRegression
	}
	fmt.Fprintln(out, "benchgate: OK")
	return nil
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "checked-in baseline file (schema 2)")
		resultsDir   = flag.String("results", "bench-out", "directory holding freshly generated BENCH_<ID>.json files")
		maxRegress   = flag.Float64("max-regress", 0.20, "allowed fractional regression of each gated summary metric")
	)
	flag.Parse()
	switch err := run(*baselinePath, *resultsDir, *maxRegress, os.Stdout); {
	case err == nil:
	case errors.Is(err, errRegression):
		os.Exit(1)
	default:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}
