package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
)

// sc2Report builds a minimal valid SC2 report with the given headline.
func sc2Report(bestSpeedup float64) *bench.SC2Report {
	r := &bench.SC2Report{Experiment: "SC2", Schema: 1, Workers: 8, Subjects: 4}
	r.Rows = []bench.SC2Row{{Config: "x", Inserts: 4, InsertsPerSec: 1}}
	r.Summary.BestSpeedup = bestSpeedup
	r.Summary.BestInsertsPerSec = 1
	r.Summary.BaselineInsertsPerSec = 1
	return r
}

// sc3Report builds a minimal valid SC3 report with all four headlines set
// to v.
func sc3Report(v float64) *bench.SC3Report {
	r := &bench.SC3Report{Experiment: "SC3", Schema: 1, Workers: 8, Subjects: 4}
	r.Rows = []bench.SC3Row{{Config: "x", Mode: "readloop", Ops: 1, OpsPerSec: 1}}
	r.Summary.CacheSpeedupDisjoint = v
	r.Summary.CacheSpeedupOverlap = v
	r.Summary.AccessSpeedup = v
	r.Summary.SweepSpeedup = v
	return r
}

// sc4Report builds a minimal valid SC4 report with the given gated ratio.
func sc4Report(ratio float64) *bench.SC4Report {
	r := &bench.SC4Report{Experiment: "SC4", Schema: 1, Clients: 8, Subjects: 4, QueueBound: 8}
	r.Rows = []bench.SC4Row{{Config: "admission 2x", Controlled: true, Offered: 4}}
	r.Summary.ControlledGoodputRatio = ratio
	r.Summary.CapacityPerSec = 100
	return r
}

// writeBaseline writes a schema-2 baseline holding the given experiment
// entries.
func writeBaseline(t *testing.T, dir string, experiments map[string]any) string {
	t.Helper()
	raw := map[string]json.RawMessage{}
	for id, v := range experiments {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		raw[id] = b
	}
	blob, err := json.Marshal(map[string]any{"schema": 2, "experiments": raw})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "BENCH_baseline.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// writeResult drops one generated BENCH_<id>.json into the results dir.
func writeResult(t *testing.T, dir, id string, v any) {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_"+id+".json"), b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRunEdgePaths is the table over the schema-2 configuration edge
// paths: every path must fail as a *named* configuration error (exit 2 in
// main), never a silent skip — plus the regression boundary, where
// exactly-at-threshold passes and epsilon-below fails with exit 1.
func TestRunEdgePaths(t *testing.T) {
	const maxRegress = 0.25 // floor = base * 0.75, exact in binary
	cases := []struct {
		name string
		// baseline entries and generated results.
		baseline map[string]any
		results  map[string]any
		// wantConfigErr: run must return a *configError whose text
		// contains every fragment (the named exit-2 error).
		wantConfigErr []string
		// wantRegression: run must return errRegression and print every
		// fragment.
		wantRegression []string
		// wantOK: run must pass.
		wantOK bool
	}{
		{
			name:     "missing experiment in results",
			baseline: map[string]any{"SC2": sc2Report(2), "SC4": sc4Report(0.9)},
			results:  map[string]any{"SC2": sc2Report(2)},
			wantConfigErr: []string{
				"experiment SC4",
				"baseline entry present but",
				"was not generated",
			},
		},
		{
			name:     "missing experiment in baseline",
			baseline: map[string]any{"SC2": sc2Report(2)},
			results:  map[string]any{"SC2": sc2Report(2), "SC4": sc4Report(0.9)},
			wantConfigErr: []string{
				"experiment SC4",
				"has no entry for it",
			},
		},
		{
			name:     "baseline entry without a registered gate",
			baseline: map[string]any{"SC99": sc2Report(2)},
			results:  map[string]any{"SC99": sc2Report(2)},
			wantConfigErr: []string{
				"experiment SC99",
				"no registered gate",
			},
		},
		{
			name:     "zero floor disables the gate",
			baseline: map[string]any{"SC4": sc4Report(0)},
			results:  map[string]any{"SC4": sc4Report(0.9)},
			wantConfigErr: []string{
				"experiment SC4",
				`baseline summary metric "controlled_goodput_ratio" is 0.00`,
				"would disable the gate",
			},
		},
		{
			name:     "zero floor in a multi-metric gate",
			baseline: map[string]any{"SC3": sc3Report(0)},
			results:  map[string]any{"SC3": sc3Report(4)},
			wantConfigErr: []string{
				"experiment SC3",
				`baseline summary metric "cache_speedup_disjoint" is 0.00`,
			},
		},
		{
			name:     "regression exactly at the threshold passes",
			baseline: map[string]any{"SC4": sc4Report(1.0)},
			results:  map[string]any{"SC4": sc4Report(0.75)}, // floor is exactly 0.75
			wantOK:   true,
		},
		{
			name:     "regression just past the threshold fails",
			baseline: map[string]any{"SC4": sc4Report(1.0)},
			results:  map[string]any{"SC4": sc4Report(0.7499)},
			wantRegression: []string{
				"FAIL",
				"SC4 controlled_goodput_ratio regressed more than 25%",
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			resultsDir := filepath.Join(dir, "bench-out")
			if err := os.MkdirAll(resultsDir, 0o755); err != nil {
				t.Fatal(err)
			}
			baselinePath := writeBaseline(t, dir, tc.baseline)
			for id, v := range tc.results {
				writeResult(t, resultsDir, id, v)
			}
			var out bytes.Buffer
			err := run(baselinePath, resultsDir, maxRegress, &out)
			switch {
			case tc.wantOK:
				if err != nil {
					t.Fatalf("run = %v, want pass\noutput:\n%s", err, out.String())
				}
				if !strings.Contains(out.String(), "benchgate: OK") {
					t.Fatalf("pass did not print OK:\n%s", out.String())
				}
			case tc.wantConfigErr != nil:
				var cfg *configError
				if !errors.As(err, &cfg) {
					t.Fatalf("run = %v, want a *configError (exit 2)", err)
				}
				for _, frag := range tc.wantConfigErr {
					if !strings.Contains(err.Error(), frag) {
						t.Fatalf("config error %q does not name %q", err.Error(), frag)
					}
				}
			default:
				if !errors.Is(err, errRegression) {
					t.Fatalf("run = %v, want errRegression (exit 1)", err)
				}
				for _, frag := range tc.wantRegression {
					if !strings.Contains(out.String(), frag) {
						t.Fatalf("regression output missing %q:\n%s", frag, out.String())
					}
				}
			}
		})
	}
}

// TestRunBaselineFileProblems covers the pre-gate configuration errors:
// unreadable baseline, wrong schema, unreadable results directory.
func TestRunBaselineFileProblems(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer

	var cfg *configError
	if err := run(filepath.Join(dir, "nope.json"), dir, 0.2, &out); !errors.As(err, &cfg) {
		t.Fatalf("missing baseline: %v, want *configError", err)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(bad, dir, 0.2, &out)
	if !errors.As(err, &cfg) || !strings.Contains(err.Error(), "unsupported baseline schema 1") {
		t.Fatalf("schema-1 baseline: %v, want named schema config error", err)
	}

	good := writeBaseline(t, dir, map[string]any{"SC4": sc4Report(0.9)})
	if err := run(good, filepath.Join(dir, "missing-dir"), 0.2, &out); !errors.As(err, &cfg) {
		t.Fatalf("missing results dir: %v, want *configError", err)
	}
}
